/**
 * @file
 * Fast-path equivalence tests.
 *
 * The search fast path has three layers that must not change any
 * result:
 *
 *  - the candidate-path CellModel::evaluate (shared ThresholdStore,
 *    SoA scan, O(1) cannot-flip early exit) must report the same flip
 *    set as an exhaustive full scan at ACmin-level doses;
 *  - the word-mask full scan (per-row occupancy masks + per-cell
 *    uniform-quantile prefilter) must be bit-identical to the plain
 *    per-bit reference loop (evaluateFullScanReference) at any dose,
 *    and the (location, victim-chunk) BER task chunking must merge
 *    back to the serial per-location scan;
 *  - the AttemptOracle-backed findAcmin / findTAggOnMin must be
 *    bit-identical to the program-replay implementation (which stays
 *    available behind SearchConfig::useOracle = false precisely so
 *    this differential test can compare them).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/sink.h"
#include "chr/ecc.h"
#include "chr/oracle.h"
#include "core/rowpress.h"

namespace rp {
namespace {

using namespace rp::literals;

chr::ModuleConfig
testConfig(std::uint64_t seed = 1)
{
    chr::ModuleConfig mc;
    mc.die = device::dieS8GbB();
    mc.numLocations = 2;
    mc.seed = seed;
    return mc;
}

std::vector<std::uint64_t>
idsOf(const std::vector<chr::VictimFlip> &flips)
{
    return chr::flipIdSet(flips);
}

TEST(FastPath, CandidateEvaluateMatchesFullScanAtAcminDose)
{
    // Find ACmin on one module, then run the attempt at exactly that
    // dose on two fresh modules, inspecting one with the candidate
    // path and one with an exhaustive scan.  The flip sets must agree:
    // the candidate cache is sized to contain every ACmin-relevant
    // cell.
    std::size_t flipping_cases = 0;
    for (Time t_on : {36_ns, 7800_ns}) {
        chr::SearchConfig cfg;
        chr::Module search(chr::locationConfig(testConfig(), 64));
        chr::RowLayout layout =
            chr::makeLayout(chr::AccessKind::SingleSided, 1, 64);
        auto res = chr::findAcmin(search.platform(), layout,
                                  chr::DataPattern::CheckerBoard, t_on,
                                  cfg);
        ASSERT_TRUE(res.flipped);

        // At exactly ACmin a fresh attempt is noise-marginal, so also
        // probe slightly above it; candidate and full scan must agree
        // at ACmin-level doses (including the empty-set cases).  Far
        // beyond ACmin the full scan legitimately finds more cells —
        // that regime belongs to the BER experiments, which request
        // full scans.
        for (double mult : {1.0, 1.1, 1.2}) {
            const auto acts =
                std::uint64_t(double(res.acmin) * mult);
            chr::Module cand_mod(chr::locationConfig(testConfig(), 64));
            chr::Module full_mod(chr::locationConfig(testConfig(), 64));
            auto cand = chr::runPressAttempt(
                cand_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, t_on, acts,
                /*full_scan=*/false);
            auto full = chr::runPressAttempt(
                full_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, t_on, acts,
                /*full_scan=*/true);
            flipping_cases += cand.flips.empty() ? 0 : 1;
            EXPECT_EQ(idsOf(cand.flips), idsOf(full.flips))
                << "candidate/full-scan divergence at tAggON "
                << formatTime(t_on) << " x" << mult;
        }
    }
    EXPECT_GT(flipping_cases, 0u);
}

TEST(FastPath, WordMaskFullScanMatchesReferenceScan)
{
    // The word-mask full scan must reproduce the plain per-bit loop
    // bit-for-bit across every dose regime: zero-ish, retention-only,
    // press-dominated (from ACmin-marginal up to far above the bucket
    // ladder, where the masks degenerate to a plain full scan),
    // hammer-dominated, and mixed.
    for (const auto &die : {device::dieS8GbB(), device::dieM16GbF()}) {
        device::CellModel model(die, 65536, 7);
        std::size_t flips_seen = 0;

        struct Regime
        {
            double press;
            double hammer;
            double retention;
        };
        const Regime regimes[] = {
            {0.0, 0.0, 1e-9},      {0.0, 0.0, 4.0},
            {1e9, 0.0, 0.0},       {1e12 * 8.0, 0.0, 0.0},
            {1e12 * 200.0, 0.0, 0.0}, {1e12 * 5e4, 0.0, 0.0},
            {0.0, 2e4, 0.0},       {0.0, 5e6, 0.0},
            {1e12 * 40.0, 3e4, 0.01},
        };
        for (const Regime &r : regimes) {
            device::DoseState dose;
            dose.press[0] = r.press;
            dose.press[1] = r.press * 0.1;
            dose.hammer[0] = dose.hammer[1] = r.hammer;
            device::RowContext ctx;
            ctx.dose = &dose;
            ctx.victimFill = 0x55;
            ctx.aggrFill[0] = 0x55;
            ctx.aggrFill[1] = 0xAA;
            ctx.retentionSeconds = r.retention;
            ctx.noiseSigma = 0.05;
            ctx.noiseNonce = 987654;
            for (double temp : {50.0, 80.0}) {
                for (int row = 62; row < 67; ++row) {
                    auto fast =
                        model.evaluate(1, row, ctx, true, temp);
                    std::vector<device::FlipRecord> ref;
                    model.evaluateFullScanReference(1, row, ctx, temp,
                                                    ref);
                    ASSERT_EQ(fast.size(), ref.size())
                        << die.id << " press=" << r.press
                        << " hammer=" << r.hammer << " row=" << row;
                    for (std::size_t i = 0; i < ref.size(); ++i) {
                        EXPECT_EQ(fast[i].bit, ref[i].bit);
                        EXPECT_EQ(fast[i].oneToZero, ref[i].oneToZero);
                        EXPECT_EQ(fast[i].mechanism, ref[i].mechanism);
                    }
                    flips_seen += ref.size();
                }
            }
        }
        // The regimes must exercise real flips, not just empty scans.
        EXPECT_GT(flips_seen, 100u) << die.id;
    }
}

TEST(FastPath, ChunkedAttemptsMatchSerialAttempts)
{
    // (location, victim-chunk) engine tasks against the serial
    // per-location scan, with more workers than locations so the
    // chunking actually splits victim lists.
    const auto mc = testConfig(3);
    const std::vector<int> rows = chr::baseRowsOf(mc);
    core::ExperimentEngine engine(
        [] {
            core::ExperimentEngine::Options o;
            o.numThreads = 4;
            return o;
        }());
    ASSERT_GT(engine.chunksPerTask(rows.size()), 1u);

    for (auto kind : {chr::AccessKind::SingleSided,
                      chr::AccessKind::DoubleSided}) {
        auto chunked = chr::maxActivationAttempts(
            mc, engine, rows, kind, chr::DataPattern::CheckerBoard,
            7800_ns);
        ASSERT_EQ(chunked.size(), rows.size());
        std::size_t total = 0;
        for (std::size_t li = 0; li < rows.size(); ++li) {
            chr::Module serial(chr::locationConfig(mc, rows[li]));
            auto expect = chr::maxActivationAttempt(
                serial, 0, kind, chr::DataPattern::CheckerBoard,
                7800_ns);
            EXPECT_EQ(idsOf(chunked[li].flips), idsOf(expect.flips))
                << chr::accessKindName(kind) << " row " << rows[li];
            EXPECT_EQ(chunked[li].elapsed, expect.elapsed);
            total += expect.flips.size();
        }
        EXPECT_GT(total, 0u) << chr::accessKindName(kind);
    }
}

namespace fs = std::filesystem;

std::string
slurp(const fs::path &p)
{
    std::ifstream is(p, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(FastPath, BerEccCsvByteIdenticalAcrossThreadCounts)
{
    // The fig25-shaped pipeline (chunked max-activation attempts ->
    // word-error stats -> SECDED/Chipkill outcomes -> CSV sink) must
    // write byte-identical artifacts at 1 and 4 threads.
    const auto mc = testConfig(2);
    const std::vector<int> rows = chr::baseRowsOf(mc);
    const api::ExperimentInfo info{"fastpath_ber", "t", "t", "test"};

    auto render = [&](int threads) {
        core::ExperimentEngine engine(
            [threads] {
                core::ExperimentEngine::Options o;
                o.numThreads = threads;
                return o;
            }());
        // Unique per process: concurrent test binaries (e.g. release
        // and sanitizer ctest runs sharing /tmp) must not clobber
        // each other's artifact directories mid-write.
        const fs::path dir = fs::temp_directory_path() /
                             ("rp_fastpath_ber_p" +
                              std::to_string(::getpid()) + "_t" +
                              std::to_string(threads));
        fs::remove_all(dir);
        api::CsvSink sink(dir);
        sink.beginExperiment(info);
        api::Dataset table("ber ecc words");
        table.header({"kind", "tAggON", "1-2", "3-8", ">8", "max",
                      "secded silent", "chipkill silent"});
        for (auto kind : {chr::AccessKind::SingleSided,
                          chr::AccessKind::DoubleSided}) {
            for (Time t : {7800_ns, 70200_ns}) {
                auto attempts = chr::maxActivationAttempts(
                    mc, engine, rows, kind,
                    chr::DataPattern::CheckerBoard, t);
                std::vector<chr::VictimFlip> flips;
                for (auto &attempt : attempts)
                    flips.insert(flips.end(), attempt.flips.begin(),
                                 attempt.flips.end());
                auto stats = chr::analyzeWordErrors(flips);
                auto secded = chr::evaluateSecded(flips);
                auto chipkill = chr::evaluateChipkill(flips, 8);
                table.row({chr::accessKindName(kind), formatTime(t),
                           api::cell(stats.words1to2),
                           api::cell(stats.words3to8),
                           api::cell(stats.wordsOver8),
                           api::cell(stats.maxFlipsPerWord),
                           api::cell(secded.silent),
                           api::cell(chipkill.silent)});
            }
        }
        sink.dataset(table);
        sink.endExperiment();
        return dir / info.id / "ber_ecc_words.csv";
    };

    const std::string csv1 = slurp(render(1));
    const std::string csv4 = slurp(render(4));
    ASSERT_FALSE(csv1.empty());
    EXPECT_EQ(csv1, csv4);
}

TEST(FastPath, OracleAttemptMatchesReplayAttempt)
{
    // Single probes, both kinds, several activation counts spanning
    // the concrete-loop and fast-forward regimes (incl. odd counts
    // exercising the double-sided tail).
    for (auto kind : {chr::AccessKind::SingleSided,
                      chr::AccessKind::DoubleSided}) {
        const chr::RowLayout layout = chr::makeLayout(kind, 1, 64);
        for (std::uint64_t acts :
             {std::uint64_t(1), std::uint64_t(2), std::uint64_t(5),
              std::uint64_t(15), std::uint64_t(16), std::uint64_t(17),
              std::uint64_t(400000), std::uint64_t(400001)}) {
            chr::Module replay_mod(chr::locationConfig(testConfig(), 64));
            chr::Module oracle_mod(chr::locationConfig(testConfig(), 64));
            auto replay = chr::runPressAttempt(
                replay_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, 96_ns, acts);
            chr::AttemptOracle oracle(oracle_mod.platform(), layout,
                                      chr::DataPattern::CheckerBoard);
            chr::AttemptResult predicted;
            oracle.pressAttempt(96_ns, acts, predicted);
            EXPECT_EQ(predicted.elapsed, replay.elapsed)
                << chr::accessKindName(kind) << " acts=" << acts;
            EXPECT_EQ(idsOf(predicted.flips), idsOf(replay.flips))
                << chr::accessKindName(kind) << " acts=" << acts;
        }
    }
}

TEST(FastPath, OracleFindAcminBitIdenticalToReplay)
{
    for (auto kind : {chr::AccessKind::SingleSided,
                      chr::AccessKind::DoubleSided}) {
        for (auto pattern : {chr::DataPattern::CheckerBoard,
                             chr::DataPattern::RowStripe}) {
            for (Time t_on : {36_ns, 636_ns, 70200_ns}) {
                const chr::RowLayout layout =
                    chr::makeLayout(kind, 1, 64);

                chr::SearchConfig replay_cfg;
                replay_cfg.useOracle = false;
                chr::Module replay_mod(
                    chr::locationConfig(testConfig(), 64));
                auto replay =
                    chr::findAcmin(replay_mod.platform(), layout,
                                   pattern, t_on, replay_cfg);

                chr::SearchConfig oracle_cfg;
                oracle_cfg.useOracle = true;
                chr::Module oracle_mod(
                    chr::locationConfig(testConfig(), 64));
                auto fast =
                    chr::findAcmin(oracle_mod.platform(), layout,
                                   pattern, t_on, oracle_cfg);

                EXPECT_EQ(fast.flipped, replay.flipped);
                EXPECT_EQ(fast.acmin, replay.acmin)
                    << chr::accessKindName(kind) << " "
                    << chr::dataPatternName(pattern) << " "
                    << formatTime(t_on);
                EXPECT_EQ(idsOf(fast.flips), idsOf(replay.flips));
            }
        }
    }
}

TEST(FastPath, OracleFindTAggOnMinBitIdenticalToReplay)
{
    for (auto kind : {chr::AccessKind::SingleSided,
                      chr::AccessKind::DoubleSided}) {
        for (std::uint64_t acts : {std::uint64_t(8),
                                   std::uint64_t(512),
                                   std::uint64_t(4096)}) {
            const chr::RowLayout layout = chr::makeLayout(kind, 1, 64);

            chr::SearchConfig replay_cfg;
            replay_cfg.useOracle = false;
            chr::Module replay_mod(chr::locationConfig(testConfig(), 64));
            auto replay = chr::findTAggOnMin(
                replay_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, acts, replay_cfg);

            chr::SearchConfig oracle_cfg;
            oracle_cfg.useOracle = true;
            chr::Module oracle_mod(chr::locationConfig(testConfig(), 64));
            auto fast = chr::findTAggOnMin(
                oracle_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, acts, oracle_cfg);

            EXPECT_EQ(fast.flipped, replay.flipped);
            EXPECT_EQ(fast.tAggOnMin, replay.tAggOnMin)
                << chr::accessKindName(kind) << " acts=" << acts;
        }
    }
}

TEST(FastPath, OracleEngineSweepMatchesPerPointModules)
{
    // The per-location engine driver (one Module reused across the
    // sweep, oracle probes) against the pre-oracle shape: one fresh
    // Module per (location, point), replay probes.
    const auto mc = testConfig();
    const std::vector<Time> sweep = {36_ns, 7800_ns};
    core::ExperimentEngine engine(
        [] {
            core::ExperimentEngine::Options o;
            o.numThreads = 2;
            return o;
        }());

    auto points = chr::acminSweep(mc, engine, sweep,
                                  chr::AccessKind::SingleSided);

    for (std::size_t ti = 0; ti < sweep.size(); ++ti) {
        for (int row : chr::baseRowsOf(mc)) {
            chr::Module fresh(chr::locationConfig(mc, row));
            auto expect = chr::acminAtLocation(
                fresh, row, sweep[ti], chr::AccessKind::SingleSided,
                chr::DataPattern::CheckerBoard, chr::SearchConfig{});
            const auto &got =
                points[ti].locations[std::size_t(
                    (row - mc.firstRow) / mc.rowStride)];
            EXPECT_EQ(got.row, expect.row);
            EXPECT_EQ(got.flipped, expect.flipped);
            EXPECT_EQ(got.acmin, expect.acmin);
            EXPECT_EQ(idsOf(got.flips), idsOf(expect.flips));
        }
    }
}

} // namespace
} // namespace rp
