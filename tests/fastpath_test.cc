/**
 * @file
 * Fast-path equivalence tests.
 *
 * The search fast path has two layers that must not change any
 * result:
 *
 *  - the candidate-path CellModel::evaluate (shared ThresholdStore,
 *    SoA scan, O(1) cannot-flip early exit) must report the same flip
 *    set as an exhaustive full scan at ACmin-level doses;
 *  - the AttemptOracle-backed findAcmin / findTAggOnMin must be
 *    bit-identical to the program-replay implementation (which stays
 *    available behind SearchConfig::useOracle = false precisely so
 *    this differential test can compare them).
 */

#include <gtest/gtest.h>

#include "chr/oracle.h"
#include "core/rowpress.h"

namespace rp {
namespace {

using namespace rp::literals;

chr::ModuleConfig
testConfig(std::uint64_t seed = 1)
{
    chr::ModuleConfig mc;
    mc.die = device::dieS8GbB();
    mc.numLocations = 2;
    mc.seed = seed;
    return mc;
}

std::vector<std::uint64_t>
idsOf(const std::vector<chr::VictimFlip> &flips)
{
    return chr::flipIdSet(flips);
}

TEST(FastPath, CandidateEvaluateMatchesFullScanAtAcminDose)
{
    // Find ACmin on one module, then run the attempt at exactly that
    // dose on two fresh modules, inspecting one with the candidate
    // path and one with an exhaustive scan.  The flip sets must agree:
    // the candidate cache is sized to contain every ACmin-relevant
    // cell.
    std::size_t flipping_cases = 0;
    for (Time t_on : {36_ns, 7800_ns}) {
        chr::SearchConfig cfg;
        chr::Module search(chr::locationConfig(testConfig(), 64));
        chr::RowLayout layout =
            chr::makeLayout(chr::AccessKind::SingleSided, 1, 64);
        auto res = chr::findAcmin(search.platform(), layout,
                                  chr::DataPattern::CheckerBoard, t_on,
                                  cfg);
        ASSERT_TRUE(res.flipped);

        // At exactly ACmin a fresh attempt is noise-marginal, so also
        // probe slightly above it; candidate and full scan must agree
        // at ACmin-level doses (including the empty-set cases).  Far
        // beyond ACmin the full scan legitimately finds more cells —
        // that regime belongs to the BER experiments, which request
        // full scans.
        for (double mult : {1.0, 1.1, 1.2}) {
            const auto acts =
                std::uint64_t(double(res.acmin) * mult);
            chr::Module cand_mod(chr::locationConfig(testConfig(), 64));
            chr::Module full_mod(chr::locationConfig(testConfig(), 64));
            auto cand = chr::runPressAttempt(
                cand_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, t_on, acts,
                /*full_scan=*/false);
            auto full = chr::runPressAttempt(
                full_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, t_on, acts,
                /*full_scan=*/true);
            flipping_cases += cand.flips.empty() ? 0 : 1;
            EXPECT_EQ(idsOf(cand.flips), idsOf(full.flips))
                << "candidate/full-scan divergence at tAggON "
                << formatTime(t_on) << " x" << mult;
        }
    }
    EXPECT_GT(flipping_cases, 0u);
}

TEST(FastPath, OracleAttemptMatchesReplayAttempt)
{
    // Single probes, both kinds, several activation counts spanning
    // the concrete-loop and fast-forward regimes (incl. odd counts
    // exercising the double-sided tail).
    for (auto kind : {chr::AccessKind::SingleSided,
                      chr::AccessKind::DoubleSided}) {
        const chr::RowLayout layout = chr::makeLayout(kind, 1, 64);
        for (std::uint64_t acts :
             {std::uint64_t(1), std::uint64_t(2), std::uint64_t(5),
              std::uint64_t(15), std::uint64_t(16), std::uint64_t(17),
              std::uint64_t(400000), std::uint64_t(400001)}) {
            chr::Module replay_mod(chr::locationConfig(testConfig(), 64));
            chr::Module oracle_mod(chr::locationConfig(testConfig(), 64));
            auto replay = chr::runPressAttempt(
                replay_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, 96_ns, acts);
            chr::AttemptOracle oracle(oracle_mod.platform(), layout,
                                      chr::DataPattern::CheckerBoard);
            chr::AttemptResult predicted;
            oracle.pressAttempt(96_ns, acts, predicted);
            EXPECT_EQ(predicted.elapsed, replay.elapsed)
                << chr::accessKindName(kind) << " acts=" << acts;
            EXPECT_EQ(idsOf(predicted.flips), idsOf(replay.flips))
                << chr::accessKindName(kind) << " acts=" << acts;
        }
    }
}

TEST(FastPath, OracleFindAcminBitIdenticalToReplay)
{
    for (auto kind : {chr::AccessKind::SingleSided,
                      chr::AccessKind::DoubleSided}) {
        for (auto pattern : {chr::DataPattern::CheckerBoard,
                             chr::DataPattern::RowStripe}) {
            for (Time t_on : {36_ns, 636_ns, 70200_ns}) {
                const chr::RowLayout layout =
                    chr::makeLayout(kind, 1, 64);

                chr::SearchConfig replay_cfg;
                replay_cfg.useOracle = false;
                chr::Module replay_mod(
                    chr::locationConfig(testConfig(), 64));
                auto replay =
                    chr::findAcmin(replay_mod.platform(), layout,
                                   pattern, t_on, replay_cfg);

                chr::SearchConfig oracle_cfg;
                oracle_cfg.useOracle = true;
                chr::Module oracle_mod(
                    chr::locationConfig(testConfig(), 64));
                auto fast =
                    chr::findAcmin(oracle_mod.platform(), layout,
                                   pattern, t_on, oracle_cfg);

                EXPECT_EQ(fast.flipped, replay.flipped);
                EXPECT_EQ(fast.acmin, replay.acmin)
                    << chr::accessKindName(kind) << " "
                    << chr::dataPatternName(pattern) << " "
                    << formatTime(t_on);
                EXPECT_EQ(idsOf(fast.flips), idsOf(replay.flips));
            }
        }
    }
}

TEST(FastPath, OracleFindTAggOnMinBitIdenticalToReplay)
{
    for (auto kind : {chr::AccessKind::SingleSided,
                      chr::AccessKind::DoubleSided}) {
        for (std::uint64_t acts : {std::uint64_t(8),
                                   std::uint64_t(512),
                                   std::uint64_t(4096)}) {
            const chr::RowLayout layout = chr::makeLayout(kind, 1, 64);

            chr::SearchConfig replay_cfg;
            replay_cfg.useOracle = false;
            chr::Module replay_mod(chr::locationConfig(testConfig(), 64));
            auto replay = chr::findTAggOnMin(
                replay_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, acts, replay_cfg);

            chr::SearchConfig oracle_cfg;
            oracle_cfg.useOracle = true;
            chr::Module oracle_mod(chr::locationConfig(testConfig(), 64));
            auto fast = chr::findTAggOnMin(
                oracle_mod.platform(), layout,
                chr::DataPattern::CheckerBoard, acts, oracle_cfg);

            EXPECT_EQ(fast.flipped, replay.flipped);
            EXPECT_EQ(fast.tAggOnMin, replay.tAggOnMin)
                << chr::accessKindName(kind) << " acts=" << acts;
        }
    }
}

TEST(FastPath, OracleEngineSweepMatchesPerPointModules)
{
    // The per-location engine driver (one Module reused across the
    // sweep, oracle probes) against the pre-oracle shape: one fresh
    // Module per (location, point), replay probes.
    const auto mc = testConfig();
    const std::vector<Time> sweep = {36_ns, 7800_ns};
    core::ExperimentEngine engine(
        [] {
            core::ExperimentEngine::Options o;
            o.numThreads = 2;
            return o;
        }());

    auto points = chr::acminSweep(mc, engine, sweep,
                                  chr::AccessKind::SingleSided);

    for (std::size_t ti = 0; ti < sweep.size(); ++ti) {
        for (int row : chr::baseRowsOf(mc)) {
            chr::Module fresh(chr::locationConfig(mc, row));
            auto expect = chr::acminAtLocation(
                fresh, row, sweep[ti], chr::AccessKind::SingleSided,
                chr::DataPattern::CheckerBoard, chr::SearchConfig{});
            const auto &got =
                points[ti].locations[std::size_t(
                    (row - mc.firstRow) / mc.rowStride)];
            EXPECT_EQ(got.row, expect.row);
            EXPECT_EQ(got.flipped, expect.flipped);
            EXPECT_EQ(got.acmin, expect.acmin);
            EXPECT_EQ(idsOf(got.flips), idsOf(expect.flips));
        }
    }
}

} // namespace
} // namespace rp
