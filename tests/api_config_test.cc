/**
 * @file
 * rp::api::Config tests: schema declaration, layered precedence
 * (defaults < env < CLI), unknown-key rejection, and the strict
 * env/text parsing that replaced the old atoi-based envInt.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "api/config.h"
#include "api/context.h"
#include "api/env.h"

namespace rp::api {
namespace {

/** setenv/unsetenv guard restoring the prior state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        old_ = had_ ? old : "";
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_, old_;
    bool had_ = false;
};

ConfigSchema
testSchema()
{
    ConfigSchema schema;
    schema.add({"count", OptionType::Int, "10", "RP_TEST_COUNT",
                "a count", 1.0, true});
    schema.add({"ratio", OptionType::Double, "1.5", "RP_TEST_RATIO",
                "a ratio", 0.0, true});
    schema.add({"label", OptionType::String, "abc", "", "a label"});
    schema.add({"flag", OptionType::Bool, "false", "", "a switch"});
    return schema;
}

TEST(ApiConfig, DefaultsAndTypedGetters)
{
    ScopedEnv count_env("RP_TEST_COUNT", nullptr);
    ScopedEnv ratio_env("RP_TEST_RATIO", nullptr);
    Config cfg{testSchema()};
    cfg.loadEnv();
    EXPECT_EQ(cfg.getInt("count"), 10);
    EXPECT_DOUBLE_EQ(cfg.getDouble("ratio"), 1.5);
    EXPECT_EQ(cfg.getString("label"), "abc");
    EXPECT_FALSE(cfg.getBool("flag"));
    EXPECT_EQ(cfg.origin("count"), ConfigLayer::Default);
}

TEST(ApiConfig, EnvOverridesDefault)
{
    ScopedEnv count_env("RP_TEST_COUNT", "42");
    ScopedEnv ratio_env("RP_TEST_RATIO", "2.25");
    Config cfg{testSchema()};
    cfg.loadEnv();
    EXPECT_EQ(cfg.getInt("count"), 42);
    EXPECT_DOUBLE_EQ(cfg.getDouble("ratio"), 2.25);
    EXPECT_EQ(cfg.origin("count"), ConfigLayer::Env);
}

TEST(ApiConfig, CliBeatsEnvRegardlessOfOrder)
{
    ScopedEnv count_env("RP_TEST_COUNT", "42");
    {
        Config cfg{testSchema()};
        cfg.loadEnv();
        cfg.set("count", "7", ConfigLayer::Cli);
        EXPECT_EQ(cfg.getInt("count"), 7);
        EXPECT_EQ(cfg.origin("count"), ConfigLayer::Cli);
    }
    {
        // CLI first, env applied afterwards must not clobber it.
        Config cfg{testSchema()};
        cfg.set("count", "7", ConfigLayer::Cli);
        cfg.loadEnv();
        EXPECT_EQ(cfg.getInt("count"), 7);
        EXPECT_EQ(cfg.origin("count"), ConfigLayer::Cli);
    }
}

TEST(ApiConfig, LegacyEnvAliasConsultedOnlyWhenPrimaryUnset)
{
    // --seed's RP_SEED has the deprecated ROWPRESS_SEED spelling as
    // envVarLegacy; model the same shape with test variables.
    ConfigSchema schema;
    schema.add({"seed", OptionType::Int, "1", "RP_TEST_SEED",
                "root seed", 0.0, true, "RP_TEST_SEED_LEGACY"});
    {
        ScopedEnv legacy("RP_TEST_SEED_LEGACY", "9");
        Config cfg{schema};
        cfg.loadEnv();
        EXPECT_EQ(cfg.getInt("seed"), 9);
        EXPECT_EQ(cfg.origin("seed"), ConfigLayer::Env);
    }
    {
        ScopedEnv primary("RP_TEST_SEED", "5");
        ScopedEnv legacy("RP_TEST_SEED_LEGACY", "9");
        Config cfg{schema};
        cfg.loadEnv();
        EXPECT_EQ(cfg.getInt("seed"), 5); // primary wins
    }
    {
        // A bad value is reported under the variable actually used.
        ScopedEnv legacy("RP_TEST_SEED_LEGACY", "nope");
        Config cfg{schema};
        try {
            cfg.loadEnv();
            FAIL() << "expected ConfigError";
        } catch (const ConfigError &e) {
            EXPECT_NE(std::string(e.what()).find("RP_TEST_SEED_LEGACY"),
                      std::string::npos);
        }
    }
    {
        // CLI still beats either env spelling.
        ScopedEnv legacy("RP_TEST_SEED_LEGACY", "9");
        Config cfg{schema};
        cfg.set("seed", "3", ConfigLayer::Cli);
        cfg.loadEnv();
        EXPECT_EQ(cfg.getInt("seed"), 3);
    }
}

TEST(ApiConfig, UnknownKeyRejected)
{
    Config cfg{testSchema()};
    EXPECT_THROW(cfg.set("bogus", "1"), ConfigError);
    EXPECT_THROW(cfg.getInt("bogus"), ConfigError);
    EXPECT_THROW((void)cfg.origin("bogus"), ConfigError);
}

TEST(ApiConfig, TypeAndBoundValidation)
{
    Config cfg{testSchema()};
    EXPECT_THROW(cfg.set("count", "abc"), ConfigError);
    EXPECT_THROW(cfg.set("count", "12abc"), ConfigError);
    EXPECT_THROW(cfg.set("count", ""), ConfigError);
    EXPECT_THROW(cfg.set("count", "-3"), ConfigError);  // min 1
    EXPECT_THROW(cfg.set("count", "0"), ConfigError);   // min 1
    // Fits long long but not int: rejected, never truncated.
    EXPECT_THROW(cfg.set("count", "4294967296"), ConfigError);
    EXPECT_NO_THROW(cfg.set("count", "1"));
    EXPECT_THROW(cfg.set("ratio", "x1.5"), ConfigError);
    EXPECT_THROW(cfg.set("ratio", "-0.1"), ConfigError); // min 0
    EXPECT_THROW(cfg.set("flag", "maybe"), ConfigError);
    EXPECT_NO_THROW(cfg.set("flag", "true"));
    EXPECT_TRUE(cfg.getBool("flag"));
}

TEST(ApiConfig, BadEnvValueRaisesNamedError)
{
    ScopedEnv count_env("RP_TEST_COUNT", "lots");
    Config cfg{testSchema()};
    try {
        cfg.loadEnv();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("RP_TEST_COUNT"),
                  std::string::npos);
    }
}

TEST(ApiConfig, WrongTypedGetterRejected)
{
    Config cfg{testSchema()};
    EXPECT_THROW(cfg.getInt("label"), ConfigError);
    EXPECT_THROW(cfg.getDouble("count"), ConfigError);
}

TEST(ApiConfig, DuplicateSchemaKeyRejected)
{
    ConfigSchema schema;
    schema.add({"k", OptionType::Int, "1", "", ""});
    EXPECT_THROW(schema.add({"k", OptionType::Int, "2", "", ""}),
                 ConfigError);
}

TEST(ApiEnv, StrictParsing)
{
    EXPECT_EQ(parseInt("42", "x"), 42);
    EXPECT_EQ(parseInt(" 42 ", "x"), 42);
    EXPECT_EQ(parseInt("-7", "x"), -7);
    EXPECT_THROW(parseInt("4.2", "x"), ConfigError);
    EXPECT_THROW(parseInt("4 2", "x"), ConfigError);
    EXPECT_THROW(parseInt("", "x"), ConfigError);
    EXPECT_THROW(parseInt("999999999999999999999", "x"), ConfigError);
    EXPECT_DOUBLE_EQ(parseDouble("0.25", "x"), 0.25);
    EXPECT_THROW(parseDouble("nanx", "x"), ConfigError);
    EXPECT_TRUE(parseBool("YES", "x"));
    EXPECT_FALSE(parseBool("off", "x"));
}

TEST(ApiEnv, EnvIntValidation)
{
    {
        ScopedEnv env("RP_TEST_UNSET", nullptr);
        EXPECT_EQ(envInt("RP_TEST_UNSET", 3), 3);
    }
    {
        ScopedEnv env("RP_TEST_INT", "12");
        EXPECT_EQ(envInt("RP_TEST_INT", 3), 12);
    }
    {
        ScopedEnv env("RP_TEST_INT", "garbage");
        EXPECT_THROW(envInt("RP_TEST_INT", 3), ConfigError);
    }
    {
        // Negative rejected by the default min of 0 rather than
        // silently used.
        ScopedEnv env("RP_TEST_INT", "-4");
        EXPECT_THROW(envInt("RP_TEST_INT", 3), ConfigError);
    }
}

TEST(ApiContext, BaseSchemaHasLegacyEnvAliases)
{
    ConfigSchema schema = baseSchema();
    ASSERT_NE(schema.find("locations"), nullptr);
    EXPECT_EQ(schema.find("locations")->envVar,
              "ROWPRESS_BENCH_LOCATIONS");
    ASSERT_NE(schema.find("threads"), nullptr);
    EXPECT_EQ(schema.find("threads")->envVar, "RP_THREADS");
    ASSERT_NE(schema.find("scale"), nullptr);
    EXPECT_EQ(schema.find("scale")->envVar, "ROWPRESS_BENCH_SCALE");
    ASSERT_NE(schema.find("seed"), nullptr);
    ASSERT_NE(schema.find("dies"), nullptr);
}

} // namespace
} // namespace rp::api
