/**
 * @file
 * CSV export tests: escaping, tidy-format layout, and round-trip
 * sanity on real sweep results.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "chr/export.h"

namespace rp::chr {
namespace {

using namespace rp::literals;

TEST(CsvExport, EscapingRules)
{
    EXPECT_EQ(csvRow({"a", "b", "c"}), "a,b,c\n");
    EXPECT_EQ(csvRow({"a,b"}), "\"a,b\"\n");
    EXPECT_EQ(csvRow({"say \"hi\""}), "\"say \"\"hi\"\"\"\n");
    EXPECT_EQ(csvRow({"line\nbreak"}), "\"line\nbreak\"\n");
    EXPECT_EQ(csvRow({}), "\n");
}

TEST(CsvExport, AcminSweepTidyFormat)
{
    ModuleConfig cfg;
    cfg.die = device::dieS8GbD();
    cfg.numLocations = 3;
    cfg.temperatureC = 80.0;
    Module module(cfg);
    auto sweep = acminSweep(module, {7800_ns, 70200_ns},
                            AccessKind::SingleSided);

    std::ostringstream os;
    writeAcminSweepCsv(os, cfg.die.id, 80.0, AccessKind::SingleSided,
                       DataPattern::CheckerBoard, sweep);
    const std::string out = os.str();

    // Header + 2 points x 3 locations.
    std::size_t lines = 0;
    for (char c : out)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 1u + 2u * 3u);
    EXPECT_NE(out.find("die,temperature_c,kind"), std::string::npos);
    EXPECT_NE(out.find("S-8Gb-D,80.0"), std::string::npos);
    EXPECT_NE(out.find("7800.0"), std::string::npos);
}

TEST(CsvExport, TAggOnMinFormat)
{
    ModuleConfig cfg;
    cfg.die = device::dieS8GbD();
    cfg.numLocations = 2;
    Module module(cfg);
    auto point = tAggOnMinPoint(module, 100, AccessKind::SingleSided);

    std::ostringstream os;
    writeTAggOnMinCsv(os, cfg.die.id, 50.0, {point});
    EXPECT_NE(os.str().find("taggonmin_us"), std::string::npos);
    EXPECT_NE(os.str().find("100"), std::string::npos);
}

TEST(CsvExport, OverlapFormat)
{
    std::vector<OverlapResult> results = {
        {7800_ns, 42, 0.0, 0.01},
    };
    std::ostringstream os;
    writeOverlapCsv(os, "S-8Gb-B", results);
    const std::string out = os.str();
    EXPECT_NE(out.find("overlap_rowhammer"), std::string::npos);
    EXPECT_NE(out.find("S-8Gb-B,7800.0"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

} // namespace
} // namespace rp::chr
