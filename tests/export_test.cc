/**
 * @file
 * CSV export tests: escaping, tidy-format layout, and round-trip
 * sanity on real sweep results.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "chr/export.h"

namespace rp::chr {
namespace {

using namespace rp::literals;

TEST(CsvExport, EscapingRules)
{
    EXPECT_EQ(csvRow({"a", "b", "c"}), "a,b,c\n");
    EXPECT_EQ(csvRow({"a,b"}), "\"a,b\"\n");
    EXPECT_EQ(csvRow({"say \"hi\""}), "\"say \"\"hi\"\"\"\n");
    EXPECT_EQ(csvRow({"line\nbreak"}), "\"line\nbreak\"\n");
    // A bare carriage return must be quoted too (a reader would
    // otherwise see a broken record).
    EXPECT_EQ(csvRow({"cr\rhere"}), "\"cr\rhere\"\n");
    EXPECT_EQ(csvRow({}), "\n");
}

TEST(CsvExport, ParseRoundTrip)
{
    const std::vector<std::vector<std::string>> rows = {
        {"plain", "with,comma", "with \"quotes\""},
        {"multi\nline", "cr\rfield", ""},
        {"trailing", "x", "y"},
    };
    std::string text;
    for (const auto &row : rows)
        text += csvRow(row);

    const auto parsed = parseCsv(text);
    ASSERT_EQ(parsed.size(), rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        ASSERT_EQ(parsed[r].size(), rows[r].size()) << "row " << r;
        for (std::size_t c = 0; c < rows[r].size(); ++c)
            EXPECT_EQ(parsed[r][c], rows[r][c])
                << "row " << r << " col " << c;
    }
}

TEST(CsvExport, ParseHandlesMissingTrailingNewline)
{
    const auto parsed = parseCsv("a,b\nc,d");
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvExport, SweepRoundTripValues)
{
    ModuleConfig cfg;
    cfg.die = device::dieS8GbD();
    cfg.numLocations = 3;
    cfg.temperatureC = 80.0;
    Module module(cfg);
    auto sweep = acminSweep(module, {7800_ns, 70200_ns},
                            AccessKind::SingleSided);

    std::ostringstream os;
    writeAcminSweepCsv(os, cfg.die.id, 80.0, AccessKind::SingleSided,
                       DataPattern::CheckerBoard, sweep);
    const auto parsed = parseCsv(os.str());

    // Header + one record per (point, location), 10 fields each.
    ASSERT_EQ(parsed.size(), 1u + 2u * 3u);
    ASSERT_EQ(parsed[0].size(), 10u);
    EXPECT_EQ(parsed[0][0], "die");
    EXPECT_EQ(parsed[0][7], "acmin");
    for (std::size_t r = 1; r < parsed.size(); ++r) {
        ASSERT_EQ(parsed[r].size(), 10u) << "record " << r;
        EXPECT_EQ(parsed[r][0], "S-8Gb-D");
        EXPECT_EQ(parsed[r][2], "Single-Sided");
    }
    // Value spot-check: the first record matches the first location
    // of the first sweep point.
    ASSERT_FALSE(sweep.empty());
    ASSERT_FALSE(sweep[0].locations.empty());
    const auto &loc = sweep[0].locations[0];
    EXPECT_EQ(parsed[1][5], std::to_string(loc.row));
    EXPECT_EQ(parsed[1][7], std::to_string(loc.acmin));
    EXPECT_EQ(parsed[1][8], std::to_string(loc.flips.size()));
}

TEST(CsvExport, AcminSweepTidyFormat)
{
    ModuleConfig cfg;
    cfg.die = device::dieS8GbD();
    cfg.numLocations = 3;
    cfg.temperatureC = 80.0;
    Module module(cfg);
    auto sweep = acminSweep(module, {7800_ns, 70200_ns},
                            AccessKind::SingleSided);

    std::ostringstream os;
    writeAcminSweepCsv(os, cfg.die.id, 80.0, AccessKind::SingleSided,
                       DataPattern::CheckerBoard, sweep);
    const std::string out = os.str();

    // Header + 2 points x 3 locations.
    std::size_t lines = 0;
    for (char c : out)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 1u + 2u * 3u);
    EXPECT_NE(out.find("die,temperature_c,kind"), std::string::npos);
    EXPECT_NE(out.find("S-8Gb-D,80.0"), std::string::npos);
    EXPECT_NE(out.find("7800.0"), std::string::npos);
}

TEST(CsvExport, TAggOnMinFormat)
{
    ModuleConfig cfg;
    cfg.die = device::dieS8GbD();
    cfg.numLocations = 2;
    Module module(cfg);
    auto point = tAggOnMinPoint(module, 100, AccessKind::SingleSided);

    std::ostringstream os;
    writeTAggOnMinCsv(os, cfg.die.id, 50.0, {point});
    EXPECT_NE(os.str().find("taggonmin_us"), std::string::npos);
    EXPECT_NE(os.str().find("100"), std::string::npos);
}

TEST(CsvExport, OverlapFormat)
{
    std::vector<OverlapResult> results = {
        {7800_ns, 42, 0.0, 0.01},
    };
    std::ostringstream os;
    writeOverlapCsv(os, "S-8Gb-B", results);
    const std::string out = os.str();
    EXPECT_NE(out.find("overlap_rowhammer"), std::string::npos);
    EXPECT_NE(out.find("S-8Gb-B,7800.0"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

} // namespace
} // namespace rp::chr
