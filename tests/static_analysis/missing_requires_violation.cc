/**
 * Negative-compile fixture: calling an RP_REQUIRES(mutex_) method
 * without holding the mutex.  tests/static_analysis_test.cmake
 * asserts that this file FAILS to compile under clang with
 * -Werror=thread-safety-analysis.  Never add this file to any build
 * target.
 */

#include "core/thread_annotations.h"

namespace {

class Registry
{
  public:
    int sizeLocked() const RP_REQUIRES(mutex_) { return size_; }

    int size() const
    {
        return sizeLocked(); // seeded violation: mutex_ not held
    }

  private:
    mutable rp::core::Mutex mutex_;
    int size_ RP_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
probe()
{
    Registry r;
    return r.size();
}
