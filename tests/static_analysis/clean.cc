/**
 * Positive fixture: the corrected counterparts of the two violation
 * fixtures.  tests/static_analysis_test.cmake asserts that this file
 * compiles cleanly under -Werror=thread-safety-analysis, so a fixture
 * failure really means the analysis fired (not that the fixture setup
 * is broken).  Never add this file to any build target.
 */

#include "core/thread_annotations.h"

namespace {

struct Counter
{
    rp::core::Mutex mutex;
    int value RP_GUARDED_BY(mutex) = 0;
};

class Registry
{
  public:
    int sizeLocked() const RP_REQUIRES(mutex_) { return size_; }

    int size() const
    {
        rp::core::LockGuard lock(mutex_);
        return sizeLocked(); // fine: mutex_ held
    }

  private:
    mutable rp::core::Mutex mutex_;
    int size_ RP_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
readWithLock()
{
    Counter c;
    Registry r;
    rp::core::LockGuard lock(c.mutex);
    return c.value + r.size(); // fine: c.mutex held
}
