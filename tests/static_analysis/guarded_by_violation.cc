/**
 * Negative-compile fixture: reading an RP_GUARDED_BY member without
 * holding its mutex.  tests/static_analysis_test.cmake asserts that
 * this file FAILS to compile under clang with
 * -Werror=thread-safety-analysis — proving the annotations bite.
 * Never add this file to any build target.
 */

#include "core/thread_annotations.h"

namespace {

struct Counter
{
    rp::core::Mutex mutex;
    int value RP_GUARDED_BY(mutex) = 0;
};

} // namespace

int
readWithoutLock()
{
    Counter c;
    {
        rp::core::LockGuard lock(c.mutex);
        c.value = 7; // fine: lock held
    }
    return c.value; // seeded violation: mutex not held
}
