/**
 * @file
 * Real-system substrate tests: the TRR engine (recency sampling,
 * counter table, dummy-row bypass), the adaptive-open-row memory
 * controller, and the cache model.
 */

#include <gtest/gtest.h>

#include "dram/timing.h"
#include "sys/cache.h"
#include "sys/memctrl.h"
#include "sys/trr.h"

namespace rp::sys {
namespace {

using namespace rp::literals;

TEST(Cache, LoadHitMissAndFlush)
{
    CacheModel cache;
    EXPECT_FALSE(cache.load(0x1000));
    EXPECT_TRUE(cache.load(0x1000));
    cache.clflush(0x1000);
    EXPECT_FALSE(cache.load(0x1000));
    EXPECT_EQ(cache.residentLines(), 1u);
    cache.clear();
    EXPECT_EQ(cache.residentLines(), 0u);
}

TEST(Trr, RecencySamplerCatchesLastActivatedRows)
{
    TrrEngine trr;
    trr.onActivate(100);
    trr.onActivate(200);
    auto victims = trr.onRefresh();
    // Neighbors of rows 200 and 100 at distance 1 and 2.
    for (int v : {98, 99, 101, 102, 198, 199, 201, 202})
        EXPECT_NE(std::find(victims.begin(), victims.end(), v),
                  victims.end())
            << v;
    EXPECT_EQ(trr.targetedRefreshes(), 1u);
}

TEST(Trr, DummyRowsShadowAggressorsFromRecency)
{
    TrrEngine trr;
    trr.onActivate(500); // aggressor
    trr.onActivate(501); // aggressor
    for (int d = 0; d < 16; ++d)
        trr.onActivate(1000 + d * 8); // dummy phase before REF
    auto victims = trr.onRefresh();
    for (int v : victims) {
        EXPECT_GT(v, 900); // only dummy neighbors refreshed
    }
}

TEST(Trr, CounterTableCatchesSustainedHammering)
{
    TrrEngine::Config cfg;
    cfg.actThreshold = 16;
    TrrEngine trr(cfg);
    bool caught = false;
    for (int ref = 0; ref < 20 && !caught; ++ref) {
        for (int i = 0; i < 8; ++i)
            trr.onActivate(321);
        // A couple of other rows that do not crowd it out.
        trr.onActivate(900);
        auto victims = trr.onRefresh();
        caught = std::find(victims.begin(), victims.end(), 322) !=
                 victims.end();
    }
    EXPECT_TRUE(caught);
}

TEST(Trr, RecencyResetsAfterRefresh)
{
    TrrEngine trr;
    trr.onActivate(100);
    trr.onRefresh();
    // No activations since the last REF: nothing recency-sampled and
    // no counter above threshold.
    auto victims = trr.onRefresh();
    EXPECT_TRUE(victims.empty());
}

device::Chip
makeChip()
{
    dram::Organization org;
    org.rows = 16384;
    return device::Chip(device::dieById("S-8Gb-C"), org,
                        dram::ddr4_2400(), 1);
}

TEST(MemCtrl, AdaptiveOpenRowServesHitsWithoutReactivation)
{
    auto chip = makeChip();
    MemCtrl::Config cfg;
    cfg.trrEnabled = false;
    MemCtrl mc(chip, cfg);
    mc.readBlock(1, 100, 0, 1_us);
    const auto acts_after_first = mc.activates();
    for (int c = 1; c < 8; ++c)
        mc.readBlock(1, 100, c, mc.now() + 10_ns);
    EXPECT_EQ(mc.activates(), acts_after_first); // row stayed open
    mc.readBlock(1, 200, 0, mc.now() + 10_ns);   // conflict
    EXPECT_EQ(mc.activates(), acts_after_first + 1);
}

TEST(MemCtrl, RowConflictLatencyExceedsRowHit)
{
    auto chip = makeChip();
    MemCtrl::Config cfg;
    cfg.trrEnabled = false;
    MemCtrl mc(chip, cfg);
    mc.readBlock(1, 100, 0, 1_us);
    const Time t0 = mc.now() + 1_us;
    const Time hit = mc.readBlock(1, 100, 1, t0) - t0;
    const Time t1 = mc.now() + 1_us;
    const Time miss = mc.readBlock(1, 300, 0, t1) - t1;
    EXPECT_GT(miss, hit + chip.timing().tRCD / 2);
}

TEST(MemCtrl, AutoRefreshFiresEveryTrefi)
{
    auto chip = makeChip();
    MemCtrl::Config cfg;
    MemCtrl mc(chip, cfg);
    mc.advanceTo(10 * chip.timing().tREFI + 1_us);
    EXPECT_EQ(mc.refreshesIssued(), 10u);
}

TEST(MemCtrl, RefreshClosesOpenRow)
{
    auto chip = makeChip();
    MemCtrl::Config cfg;
    MemCtrl mc(chip, cfg);
    mc.readBlock(1, 100, 0, 1_us);
    EXPECT_TRUE(chip.bank(1).isOpen());
    mc.advanceTo(chip.timing().tREFI + 1_us);
    EXPECT_FALSE(chip.bank(1).isOpen());
    EXPECT_GE(mc.precharges(), 1u);
}

TEST(MemCtrl, TrackedRowsAccumulateOpenTime)
{
    auto chip = makeChip();
    MemCtrl::Config cfg;
    cfg.trrEnabled = false;
    MemCtrl mc(chip, cfg);
    mc.trackRow(1, 100);
    mc.readBlock(1, 100, 0, 1_us);
    for (int c = 1; c < 16; ++c)
        mc.readBlock(1, 100, c, mc.now() + 20_ns);
    mc.readBlock(1, 200, 0, mc.now() + 5_ns); // closes row 100
    EXPECT_EQ(mc.trackedPrecharges(), 1u);
    EXPECT_GT(mc.trackedOpenTime(), 15 * 20_ns);
    // Untracked rows do not contribute.
    mc.readBlock(1, 300, 0, mc.now() + 5_ns);
    EXPECT_EQ(mc.trackedPrecharges(), 1u);
}

TEST(MemCtrl, TrrRefreshesVictimsOfHammeredRow)
{
    auto chip = makeChip();
    MemCtrl::Config cfg;
    cfg.trr.actThreshold = 8;
    MemCtrl mc(chip, cfg);
    // Hammer a row continuously across several REF windows with no
    // dummy cover: TRR must target it.
    Time t = 1_us;
    for (int i = 0; i < 2000; ++i) {
        mc.readBlock(1, 4000, 0, t);
        mc.readBlock(1, 4100, 0, mc.now() + 5_ns); // conflict partner
        t = mc.now() + 5_ns;
    }
    EXPECT_GT(mc.targetedRefreshes(), 0u);
    // The victim's accumulated dose was cleared by TRR along the way.
    EXPECT_TRUE(chip.fault().dose(1, 4001).hammer[0] <
                double(mc.activates()));
}

} // namespace
} // namespace rp::sys
