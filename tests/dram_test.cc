/**
 * @file
 * Unit and property tests for the DRAM substrate: timing parameter
 * sets, the timing-checked bank state machine, physical address
 * mapping, and in-DRAM row scrambling.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/address.h"
#include "dram/bank.h"
#include "dram/timing.h"

namespace rp::dram {
namespace {

using namespace rp::literals;

TEST(Timing, PresetsAreConsistent)
{
    for (const auto &t : {ddr4_2400(), ddr4_3200(), benderTiming()}) {
        EXPECT_GT(t.tRAS, 0) << t.name;
        EXPECT_GT(t.tRP, 0) << t.name;
        EXPECT_EQ(t.tRC(), t.tRAS + t.tRP) << t.name;
        EXPECT_EQ(t.tREFI, 7800_ns) << t.name;
        EXPECT_EQ(t.tREFW, 64_ms) << t.name;
        EXPECT_EQ(t.maxRowOpenNoPostpone(), 7800_ns) << t.name;
        EXPECT_EQ(t.maxRowOpenPostponed(), 70200_ns) << t.name;
        EXPECT_LT(t.tRRDS, t.tFAW) << t.name;
    }
}

TEST(Timing, BenderUsesPaperMinimums)
{
    auto t = benderTiming();
    // Footnote 3: 36 ns minimum tAggON, 1.5 ns command granularity.
    EXPECT_EQ(t.tRAS, 36_ns);
    EXPECT_EQ(t.tCK, Time(1500));
}

TEST(Bank, ActRequiresClosedBank)
{
    auto timing = benderTiming();
    Bank bank(timing);
    EXPECT_FALSE(bank.isOpen());
    bank.act(10, 0);
    EXPECT_TRUE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), 10);
    EXPECT_EQ(bank.openedAt(), 0);
    EXPECT_DEATH(bank.act(11, 1000), "ACT to open bank");
}

TEST(Bank, PreEnforcesTras)
{
    auto timing = benderTiming();
    Bank bank(timing);
    bank.act(1, 0);
    EXPECT_EQ(bank.earliest(Command::PRE), timing.tRAS);
    EXPECT_DEATH(bank.pre(timing.tRAS - 1), "violates");
}

TEST(Bank, OpenIntervalReportsOnTime)
{
    auto timing = benderTiming();
    Bank bank(timing);
    bank.act(7, 1000);
    auto interval = bank.pre(1000 + 7800_ns);
    EXPECT_EQ(interval.row, 7);
    EXPECT_EQ(interval.onTime(), 7800_ns);
    EXPECT_FALSE(bank.isOpen());
}

TEST(Bank, ActAfterPreWaitsTrp)
{
    auto timing = benderTiming();
    Bank bank(timing);
    bank.act(1, 0);
    bank.pre(timing.tRAS);
    EXPECT_EQ(bank.earliest(Command::ACT), timing.tRAS + timing.tRP);
    EXPECT_DEATH(bank.act(2, timing.tRAS + timing.tRP - 1), "violates");
}

TEST(Bank, ReadRespectsTrcdAndExtendsPre)
{
    auto timing = benderTiming();
    Bank bank(timing);
    bank.act(1, 0);
    EXPECT_EQ(bank.earliest(Command::RD), timing.tRCD);
    const Time ready = bank.read(timing.tRCD);
    EXPECT_EQ(ready, timing.tRCD + timing.tCL + timing.tBL);
    // A late read pushes the earliest PRE to read + tRTP.
    const Time late_rd = timing.tRAS + 10_ns;
    bank.read(late_rd);
    EXPECT_GE(bank.earliest(Command::PRE), late_rd + timing.tRTP);
}

TEST(Bank, WriteRecoveryBlocksPre)
{
    auto timing = benderTiming();
    Bank bank(timing);
    bank.act(1, 0);
    const Time done = bank.write(timing.tRCD);
    EXPECT_EQ(done,
              timing.tRCD + timing.tCWL + timing.tBL + timing.tWR);
    EXPECT_GE(bank.earliest(Command::PRE), done);
}

TEST(Bank, RefBlocksActivationForTrfc)
{
    auto timing = benderTiming();
    Bank bank(timing);
    bank.ref(0);
    EXPECT_EQ(bank.earliest(Command::ACT), timing.tRFC);
    EXPECT_DEATH(bank.act(1, timing.tRFC - 1), "violates");
}

TEST(Bank, ResetClearsState)
{
    auto timing = benderTiming();
    Bank bank(timing);
    bank.act(1, 0);
    bank.reset();
    EXPECT_FALSE(bank.isOpen());
    bank.act(2, 0); // legal immediately after reset
}

/** Property: a random legal command sequence never trips a check. */
TEST(Bank, RandomLegalSequencesAreAccepted)
{
    auto timing = ddr4_3200();
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        Bank bank(timing);
        Time now = 0;
        for (int step = 0; step < 200; ++step) {
            if (bank.isOpen()) {
                switch (rng.below(3)) {
                  case 0:
                    now = std::max(now, bank.earliest(Command::RD));
                    bank.read(now);
                    break;
                  case 1:
                    now = std::max(now, bank.earliest(Command::WR));
                    bank.write(now);
                    break;
                  default:
                    now = std::max(now, bank.earliest(Command::PRE));
                    bank.pre(now);
                    break;
                }
            } else {
                now = std::max(now, bank.earliest(Command::ACT));
                if (rng.below(8) == 0)
                    bank.ref(now);
                else
                    bank.act(int(rng.below(1000)), now);
            }
            now += Time(rng.below(50)) * 1_ns;
        }
    }
}

TEST(Command, NamesAreStable)
{
    EXPECT_STREQ(commandName(Command::ACT), "ACT");
    EXPECT_STREQ(commandName(Command::PRE), "PRE");
    EXPECT_STREQ(commandName(Command::REF), "REF");
    EXPECT_STREQ(commandName(Command::NOP), "NOP");
}

TEST(Organization, CapacityMath)
{
    Organization org;
    org.ranks = 2;
    EXPECT_EQ(org.banksPerRank(), 16);
    EXPECT_EQ(org.totalBanks(), 32);
    EXPECT_EQ(org.rowBytes(), 8192);
    EXPECT_EQ(org.capacityBytes(),
              std::int64_t(32) * 65536 * 8192);
}

struct MapperParam
{
    int ranks, bgs, banks, rows, cols;
    bool xorHash;
};

class MapperRoundTrip : public ::testing::TestWithParam<MapperParam>
{
};

TEST_P(MapperRoundTrip, EncodeDecodeIsIdentity)
{
    const auto p = GetParam();
    Organization org;
    org.ranks = p.ranks;
    org.bankGroups = p.bgs;
    org.banksPerGroup = p.banks;
    org.rows = p.rows;
    org.columns = p.cols;
    AddressMapper mapper(org, p.xorHash);

    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        Address a;
        a.rank = int(rng.below(std::uint64_t(p.ranks)));
        a.bankGroup = int(rng.below(std::uint64_t(p.bgs)));
        a.bank = int(rng.below(std::uint64_t(p.banks)));
        a.row = int(rng.below(std::uint64_t(p.rows)));
        a.column = int(rng.below(std::uint64_t(p.cols)));
        const auto phys = mapper.encode(a);
        const auto back = mapper.decode(phys);
        EXPECT_EQ(back.rank, a.rank);
        EXPECT_EQ(back.bankGroup, a.bankGroup);
        EXPECT_EQ(back.bank, a.bank);
        EXPECT_EQ(back.row, a.row);
        EXPECT_EQ(back.column, a.column);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Orgs, MapperRoundTrip,
    ::testing::Values(MapperParam{1, 4, 4, 65536, 128, true},
                      MapperParam{2, 4, 4, 65536, 128, true},
                      MapperParam{2, 4, 4, 65536, 128, false},
                      MapperParam{1, 2, 2, 4096, 64, true},
                      MapperParam{4, 4, 4, 16384, 128, false}));

TEST(Mapper, AdjacentRowsShareBank)
{
    Organization org;
    AddressMapper mapper(org, true);
    Address a;
    a.row = 1000;
    a.bankGroup = 2;
    Address b = a;
    b.row = 1001;
    // Same bank coordinates must map to the same physical bank even
    // with the XOR fold (construct both through encode/decode).
    auto da = mapper.decode(mapper.encode(a));
    auto db = mapper.decode(mapper.encode(b));
    EXPECT_TRUE(da.sameBank(a));
    EXPECT_TRUE(db.sameBank(b));
}

class ScramblerTest
    : public ::testing::TestWithParam<RowScrambler::Scheme>
{
};

TEST_P(ScramblerTest, IsAnInvolutionAndAPermutation)
{
    RowScrambler s(GetParam(), 1024);
    std::vector<bool> seen(1024, false);
    for (int r = 0; r < 1024; ++r) {
        const int phys = s.logicalToPhysical(r);
        ASSERT_GE(phys, 0);
        ASSERT_LT(phys, 1024);
        EXPECT_FALSE(seen[std::size_t(phys)]);
        seen[std::size_t(phys)] = true;
        EXPECT_EQ(s.physicalToLogical(phys), r);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ScramblerTest,
    ::testing::Values(RowScrambler::Scheme::None,
                      RowScrambler::Scheme::FoldedPair));

TEST(Scrambler, FoldedPairSwapsMiddle)
{
    RowScrambler s(RowScrambler::Scheme::FoldedPair, 16);
    EXPECT_EQ(s.logicalToPhysical(0), 0);
    EXPECT_EQ(s.logicalToPhysical(1), 2);
    EXPECT_EQ(s.logicalToPhysical(2), 1);
    EXPECT_EQ(s.logicalToPhysical(3), 3);
    EXPECT_EQ(s.logicalToPhysical(5), 6);
}

} // namespace
} // namespace rp::dram
