/**
 * @file
 * `rowpress` CLI tests against dummy registered experiments: list
 * output, glob selection, run exit codes (success, unknown
 * experiment, unknown flag), config precedence through the CLI, and
 * sink artifact writing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/cli.h"
#include "api/context.h"
#include "api/registry.h"
#include "chr/export.h"

namespace rp::api {
namespace {

namespace fs = std::filesystem;

int g_runs_a = 0;
int g_last_knob = -1;

/** Register two dummy experiments once for the whole test binary. */
struct RegisterDummies
{
    RegisterDummies()
    {
        ExperimentRegistry::instance().add(
            {{"zzztest_a", "Dummy experiment A", "none", "test"},
             [](ConfigSchema &schema) {
                 schema.add({"knob", OptionType::Int, "5",
                             "RP_TEST_CLI_KNOB", "dummy knob", 0.0,
                             true});
             },
             [](ExperimentContext &ctx) {
                 ++g_runs_a;
                 g_last_knob = ctx.config().getInt("knob");
                 Dataset d("dummy table");
                 d.header({"k", "v"});
                 d.rowf("knob", g_last_knob);
                 d.row({"text", "with,comma"});
                 ctx.emit(d);
                 ctx.note("dummy note\n");
             }});
        ExperimentRegistry::instance().add(
            {{"zzztest_b", "Dummy experiment B", "none", "test"},
             nullptr,
             [](ExperimentContext &ctx) {
                 Dataset d("b table");
                 d.header({"x"});
                 d.row({"1"});
                 ctx.emit(d);
             }});
    }
};
const RegisterDummies register_dummies;

int
cli(const std::vector<std::string> &args, std::string *out_text = nullptr)
{
    std::ostringstream out, err;
    const int rc = runCli(args, out, err);
    if (out_text)
        *out_text = out.str() + err.str();
    return rc;
}

TEST(ApiCli, ListShowsRegisteredExperiments)
{
    std::string text;
    ASSERT_EQ(cli({"list"}, &text), 0);
    EXPECT_NE(text.find("zzztest_a"), std::string::npos);
    EXPECT_NE(text.find("Dummy experiment A"), std::string::npos);
    EXPECT_NE(text.find("zzztest_b"), std::string::npos);
}

TEST(ApiCli, ListFiltersByGlob)
{
    std::string text;
    ASSERT_EQ(cli({"list", "zzztest_b"}, &text), 0);
    EXPECT_EQ(text.find("zzztest_a"), std::string::npos);
    EXPECT_NE(text.find("zzztest_b"), std::string::npos);
    // Multiple patterns union; unknown flags are rejected.
    ASSERT_EQ(cli({"list", "zzztest_a", "zzztest_b"}, &text), 0);
    EXPECT_NE(text.find("zzztest_a"), std::string::npos);
    EXPECT_NE(text.find("zzztest_b"), std::string::npos);
    EXPECT_EQ(cli({"list", "--category", "test"}), 2);
}

TEST(ApiCli, FlagRejectionPrecedesAnyRun)
{
    // zzztest_b does not declare --knob: the whole invocation must
    // fail before zzztest_a (selected first) runs.
    const int before = g_runs_a;
    EXPECT_EQ(cli({"run", "zzztest_a", "zzztest_b", "--knob", "1"}),
              2);
    EXPECT_EQ(g_runs_a, before);
}

TEST(ApiCli, UnknownCommandAndExperimentExitCode2)
{
    EXPECT_EQ(cli({"frobnicate"}), 2);
    EXPECT_EQ(cli({"run", "zzz_does_not_exist"}), 2);
    EXPECT_EQ(cli({"run"}), 2);
}

TEST(ApiCli, UnknownFlagRejectedWithExitCode2)
{
    std::string text;
    EXPECT_EQ(cli({"run", "zzztest_a", "--bogus", "1"}, &text), 2);
    EXPECT_NE(text.find("--bogus"), std::string::npos);
    // zzztest_b does not declare --knob.
    EXPECT_EQ(cli({"run", "zzztest_b", "--knob", "1"}), 2);
    // Malformed value of a declared flag.
    EXPECT_EQ(cli({"run", "zzztest_a", "--knob", "x"}), 2);
    // Missing value.
    EXPECT_EQ(cli({"run", "zzztest_a", "--knob"}), 2);
}

TEST(ApiCli, RunExecutesAndReportsCompletion)
{
    const int before = g_runs_a;
    std::string text;
    ASSERT_EQ(cli({"run", "zzztest_a", "--threads", "1"}, &text), 0);
    EXPECT_EQ(g_runs_a, before + 1);
    EXPECT_NE(text.find("Dummy experiment A"), std::string::npos);
    EXPECT_NE(text.find("dummy table"), std::string::npos);
    EXPECT_NE(text.find("dummy note"), std::string::npos);
    EXPECT_NE(text.find("[rowpress] zzztest_a completed"),
              std::string::npos);
}

TEST(ApiCli, GlobRunsBothDummies)
{
    const int before = g_runs_a;
    std::string text;
    ASSERT_EQ(cli({"run", "zzztest_?", "--threads", "1"}, &text), 0);
    EXPECT_EQ(g_runs_a, before + 1);
    EXPECT_NE(text.find("b table"), std::string::npos);
}

TEST(ApiCli, FlagOverridesEnvThroughCli)
{
    ASSERT_EQ(::setenv("RP_TEST_CLI_KNOB", "11", 1), 0);
    ASSERT_EQ(cli({"run", "zzztest_a", "--threads", "1"}), 0);
    EXPECT_EQ(g_last_knob, 11);
    ASSERT_EQ(cli({"run", "zzztest_a", "--threads", "1", "--knob=23"}),
              0);
    EXPECT_EQ(g_last_knob, 23);
    ::unsetenv("RP_TEST_CLI_KNOB");
    ASSERT_EQ(cli({"run", "zzztest_a", "--threads", "1"}), 0);
    EXPECT_EQ(g_last_knob, 5); // schema default
}

TEST(ApiCli, CsvAndJsonArtifactsWritten)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "rp_cli_artifacts";
    fs::remove_all(dir);
    ASSERT_EQ(cli({"run", "zzztest_a", "--threads", "1", "--format",
                   "csv,json", "--out", dir.string()}),
              0);

    const fs::path csv = dir / "zzztest_a" / "dummy_table.csv";
    ASSERT_TRUE(fs::exists(csv));
    ASSERT_GT(fs::file_size(csv), 0u);
    std::ifstream in(csv);
    std::stringstream body;
    body << in.rdbuf();
    auto records = chr::parseCsv(body.str());
    ASSERT_EQ(records.size(), 3u); // header + 2 rows
    EXPECT_EQ(records[0].size(), 2u);
    EXPECT_EQ(records[1][0], "knob");
    EXPECT_EQ(records[2][1], "with,comma"); // quoted comma round-trip

    const fs::path json = dir / "zzztest_a" / "result.json";
    ASSERT_TRUE(fs::exists(json));
    std::ifstream jin(json);
    std::stringstream jbody;
    jbody << jin.rdbuf();
    EXPECT_NE(jbody.str().find("\"experiment\": \"zzztest_a\""),
              std::string::npos);
    EXPECT_NE(jbody.str().find("dummy note"), std::string::npos);
}

TEST(ApiCli, UnknownFormatRejected)
{
    EXPECT_EQ(cli({"run", "zzztest_a", "--format", "xml"}), 2);
}

TEST(ApiRegistry, GlobMatcher)
{
    EXPECT_TRUE(globMatch("fig06", "fig06"));
    EXPECT_TRUE(globMatch("fig*", "fig06"));
    EXPECT_TRUE(globMatch("*", "table3"));
    EXPECT_TRUE(globMatch("fig?6", "fig06"));
    EXPECT_TRUE(globMatch("*6", "fig06"));
    EXPECT_FALSE(globMatch("fig?6", "fig006"));
    EXPECT_FALSE(globMatch("fig*", "table3"));
    EXPECT_FALSE(globMatch("fig06", "fig0"));
    EXPECT_FALSE(globMatch("", "x"));
    EXPECT_TRUE(globMatch("**", "anything"));
}

TEST(ApiRegistry, DuplicateIdRejected)
{
    EXPECT_THROW(ExperimentRegistry::instance().add(
                     {{"zzztest_a", "dup", "", "test"}, nullptr,
                      [](ExperimentContext &) {}}),
                 std::logic_error);
}

} // namespace
} // namespace rp::api
