/**
 * @file
 * ResultSink tests: ASCII rendering, CSV artifact layout (slug
 * collisions, raw chr/export artifacts), JSON escaping and numeric
 * detection.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/env.h"
#include "api/sink.h"
#include "chr/export.h"

namespace rp::api {
namespace {

namespace fs = std::filesystem;

ExperimentInfo
info()
{
    return {"sink_test", "Sink test", "none", "test"};
}

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p);
    std::stringstream body;
    body << in.rdbuf();
    return body.str();
}

TEST(ApiDataset, SlugifyNames)
{
    EXPECT_EQ(slugify("Mfr. S 8Gb B-Die single-sided @ 50C"),
              "mfr_s_8gb_b-die_single-sided_50c");
    EXPECT_EQ(slugify("Adapted configurations"),
              "adapted_configurations");
    EXPECT_EQ(slugify("///"), "dataset");
}

TEST(ApiDataset, RowsPaddedToHeader)
{
    Dataset d("x");
    d.header({"a", "b", "c"});
    d.row({"1"});
    ASSERT_EQ(d.rows[0].size(), 3u);
    EXPECT_EQ(d.rows[0][1], "");
}

TEST(ApiSink, TableSinkRendersBannerDatasetAndNotes)
{
    std::ostringstream os;
    TableSink sink(os);
    sink.beginExperiment(info());
    Dataset d("my table");
    d.header({"col"});
    d.row({"val"});
    sink.dataset(d);
    sink.note("a note\n");
    sink.endExperiment();
    const std::string text = os.str();
    EXPECT_NE(text.find("Sink test"), std::string::npos);
    EXPECT_NE(text.find("== my table =="), std::string::npos);
    EXPECT_NE(text.find("a note"), std::string::npos);
}

TEST(ApiSink, CsvSinkWritesDatasetsAndResolvesCollisions)
{
    const fs::path dir = fs::path(::testing::TempDir()) / "rp_csv_sink";
    fs::remove_all(dir);
    CsvSink sink(dir);
    sink.beginExperiment(info());

    Dataset d("Same Name");
    d.header({"h"});
    d.row({"1"});
    sink.dataset(d);
    Dataset d2("Same Name"); // collides after slugify
    d2.header({"h"});
    d2.row({"2"});
    sink.dataset(d2);
    sink.endExperiment();

    EXPECT_TRUE(fs::exists(dir / "sink_test" / "same_name.csv"));
    EXPECT_TRUE(fs::exists(dir / "sink_test" / "same_name_2.csv"));
    auto rec = chr::parseCsv(slurp(dir / "sink_test" / "same_name_2.csv"));
    ASSERT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec[1][0], "2");
}

TEST(ApiSink, CsvSinkWritesRawArtifacts)
{
    const fs::path dir = fs::path(::testing::TempDir()) / "rp_raw_sink";
    fs::remove_all(dir);
    CsvSink sink(dir);
    sink.beginExperiment(info());
    sink.rawCsv("raw_overlap", [](std::ostream &os) {
        chr::writeOverlapCsv(os, "S-8Gb-B",
                             {{Time(7800000), 42, 0.0, 0.01}});
    });
    sink.endExperiment();
    const auto text = slurp(dir / "sink_test" / "raw_overlap.csv");
    auto rec = chr::parseCsv(text);
    ASSERT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec[0][0], "die");
    EXPECT_EQ(rec[1][0], "S-8Gb-B");
    EXPECT_EQ(rec[1][2], "42");
}

TEST(ApiSink, TableAndJsonSinksIgnoreRawArtifacts)
{
    std::ostringstream os;
    TableSink table_sink(os);
    table_sink.rawCsv("x", [](std::ostream &o) { o << "boom\n"; });
    EXPECT_EQ(os.str(), "");
}

TEST(ApiSink, JsonNumericDetection)
{
    EXPECT_TRUE(looksNumeric("42"));
    EXPECT_TRUE(looksNumeric("-0.5"));
    EXPECT_TRUE(looksNumeric("1e5"));
    EXPECT_TRUE(looksNumeric("1.25E-3"));
    EXPECT_TRUE(looksNumeric("0"));
    EXPECT_FALSE(looksNumeric("36ns"));
    EXPECT_FALSE(looksNumeric("nan"));
    EXPECT_FALSE(looksNumeric("inf"));
    EXPECT_FALSE(looksNumeric(""));
    EXPECT_FALSE(looksNumeric("-"));
    EXPECT_FALSE(looksNumeric("+1"));
    EXPECT_FALSE(looksNumeric(".5"));
    EXPECT_FALSE(looksNumeric("1.2.3"));
    // strtod accepts these; the JSON grammar must not.
    EXPECT_FALSE(looksNumeric("0x1A"));
    EXPECT_FALSE(looksNumeric("007"));
    EXPECT_FALSE(looksNumeric("1."));
    EXPECT_FALSE(looksNumeric("1e"));
}

TEST(ApiSink, JsonEscaping)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ApiSink, JsonSinkWritesWellFormedResult)
{
    const fs::path dir = fs::path(::testing::TempDir()) / "rp_json_sink";
    fs::remove_all(dir);
    JsonSink sink(dir);
    sink.beginExperiment(info());
    Dataset d("data");
    d.header({"name", "value"});
    d.row({"36ns", "381.7K"});
    d.row({"x", "1.25"});
    sink.dataset(d);
    sink.note("note with \"quotes\"\n");
    sink.endExperiment();

    const auto text = slurp(dir / "sink_test" / "result.json");
    EXPECT_NE(text.find("\"experiment\": \"sink_test\""),
              std::string::npos);
    // Strings quoted, numbers bare.
    EXPECT_NE(text.find("[\"36ns\", \"381.7K\"]"), std::string::npos);
    EXPECT_NE(text.find("[\"x\", 1.25]"), std::string::npos);
    EXPECT_NE(text.find("note with \\\"quotes\\\""),
              std::string::npos);
}

TEST(ApiSink, MakeSinkFactory)
{
    std::ostringstream os;
    EXPECT_EQ(makeSink("table", "/tmp", os)->formatName(), "table");
    EXPECT_EQ(makeSink("csv", "/tmp", os)->formatName(), "csv");
    EXPECT_EQ(makeSink("json", "/tmp", os)->formatName(), "json");
    EXPECT_THROW(makeSink("yaml", "/tmp", os), ConfigError);
}

} // namespace
} // namespace rp::api
