/**
 * @file
 * Parameterized property sweeps over the characterization surface:
 * data-pattern eligibility (section 5.3), temperature monotonicity
 * (section 5.1), access-pattern behaviour (section 5.2), and
 * per-die single-activation extremes - each checked across many
 * (die, pattern, temperature) combinations.
 */

#include <gtest/gtest.h>

#include "chr/experiments.h"

namespace rp::chr {
namespace {

using namespace rp::literals;

ModuleConfig
tiny(const device::DieConfig &die, double temp)
{
    ModuleConfig cfg;
    cfg.die = die;
    cfg.numLocations = 4;
    cfg.temperatureC = temp;
    cfg.seed = 23;
    return cfg;
}

std::string
sanitize(std::string s)
{
    for (auto &c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return s;
}

// ---------------------------------------------------------------
// Data-pattern eligibility (Obsv. 14/15).
// ---------------------------------------------------------------

class PatternEligibility : public ::testing::TestWithParam<DataPattern>
{
};

TEST_P(PatternEligibility, LongTAggOnFlipsRequireChargedVictims)
{
    const DataPattern pattern = GetParam();
    Module module(tiny(device::dieById("S-8Gb-D"), 80.0));
    auto point = acminPoint(module, 70200_ns, AccessKind::SingleSided,
                            pattern);
    const bool victims_have_charged_cells =
        victimFill(pattern) != 0x00; // true-cell die
    if (victims_have_charged_cells)
        EXPECT_GT(point.fractionFlipped(), 0.0)
            << dataPatternName(pattern);
    else
        EXPECT_EQ(point.fractionFlipped(), 0.0)
            << dataPatternName(pattern);
}

TEST_P(PatternEligibility, RowHammerRegimeFlipsRequireDischargedVictims)
{
    const DataPattern pattern = GetParam();
    Module module(tiny(device::dieById("S-8Gb-D"), 50.0));
    auto point =
        acminPoint(module, 36_ns, AccessKind::DoubleSided, pattern);
    const bool victims_have_discharged_cells =
        victimFill(pattern) != 0xFF;
    if (victims_have_discharged_cells)
        EXPECT_GT(point.fractionFlipped(), 0.0)
            << dataPatternName(pattern);
    else
        EXPECT_EQ(point.fractionFlipped(), 0.0)
            << dataPatternName(pattern);
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternEligibility,
    ::testing::ValuesIn(allDataPatterns()),
    [](const ::testing::TestParamInfo<DataPattern> &info) {
        return std::string(dataPatternName(info.param));
    });

// ---------------------------------------------------------------
// Temperature monotonicity (Obsv. 9), all vulnerable dies.
// ---------------------------------------------------------------

class TemperatureMonotonic
    : public ::testing::TestWithParam<device::DieConfig>
{
};

TEST_P(TemperatureMonotonic, HotterMeansFewerActivations)
{
    Module m50(tiny(GetParam(), 50.0));
    Module m80(tiny(GetParam(), 80.0));
    auto p50 = acminPoint(m50, 70200_ns, AccessKind::SingleSided);
    auto p80 = acminPoint(m80, 70200_ns, AccessKind::SingleSided);
    if (p50.acminSummary().count == 0)
        GTEST_SKIP() << "not vulnerable at 50C";
    ASSERT_GT(p80.fractionFlipped(), 0.0);
    EXPECT_LT(p80.meanAcmin(), p50.meanAcmin() * 1.05)
        << GetParam().id;
    EXPECT_GE(p80.fractionFlipped() + 1e-9, p50.fractionFlipped())
        << GetParam().id;
}

INSTANTIATE_TEST_SUITE_P(
    Dies, TemperatureMonotonic,
    ::testing::Values(device::dieById("S-4Gb-F"),
                      device::dieById("S-8Gb-B"),
                      device::dieById("S-8Gb-C"),
                      device::dieById("S-8Gb-D"),
                      device::dieById("H-4Gb-X"),
                      device::dieById("H-16Gb-A"),
                      device::dieById("H-16Gb-C"),
                      device::dieById("M-16Gb-B"),
                      device::dieById("M-16Gb-E"),
                      device::dieById("M-16Gb-F")),
    [](const ::testing::TestParamInfo<device::DieConfig> &info) {
        return sanitize(info.param.id);
    });

// ---------------------------------------------------------------
// Access-pattern crossover (Obsv. 13).
// ---------------------------------------------------------------

TEST(AccessPattern, SingleSidedWinsAtLongTAggOn)
{
    Module module(tiny(device::dieById("S-8Gb-D"), 80.0));
    auto ss = acminPoint(module, 1_ms, AccessKind::SingleSided);
    auto ds = acminPoint(module, 1_ms, AccessKind::DoubleSided);
    ASSERT_GT(ss.fractionFlipped(), 0.0);
    ASSERT_GT(ds.fractionFlipped(), 0.0);
    // Paper: single-sided needs fewer total activations past the
    // crossover (~2x fewer, since double-sided splits on-time).
    EXPECT_LT(ss.meanAcmin(), ds.meanAcmin());
}

TEST(AccessPattern, DoubleSidedWinsAtRowHammer)
{
    // Aggregate over locations so row-to-row variation averages out.
    Module module(tiny(device::dieById("S-8Gb-C"), 50.0));
    auto ss = acminPoint(module, 36_ns, AccessKind::SingleSided);
    auto ds = acminPoint(module, 36_ns, AccessKind::DoubleSided);
    ASSERT_GT(ss.fractionFlipped(), 0.0);
    ASSERT_GT(ds.fractionFlipped(), 0.0);
    EXPECT_LT(ds.meanAcmin(), ss.meanAcmin() * 1.1);
}

// ---------------------------------------------------------------
// Single-activation extremes (Obsv. 2/6), per die at 80C.
// ---------------------------------------------------------------

class SingleActivation
    : public ::testing::TestWithParam<device::DieConfig>
{
};

TEST_P(SingleActivation, ThirtyMsFlipsWithAcOne)
{
    Module module(tiny(GetParam(), 80.0));
    auto point = acminPoint(module, 30_ms, AccessKind::SingleSided);
    ASSERT_GT(point.fractionFlipped(), 0.0) << GetParam().id;
    EXPECT_LE(point.acminSummary().min, 2.0) << GetParam().id;
}

INSTANTIATE_TEST_SUITE_P(
    Dies, SingleActivation,
    ::testing::Values(device::dieById("S-8Gb-B"),
                      device::dieById("S-8Gb-D"),
                      device::dieById("H-16Gb-A"),
                      device::dieById("M-16Gb-F")),
    [](const ::testing::TestParamInfo<device::DieConfig> &info) {
        return sanitize(info.param.id);
    });

// ---------------------------------------------------------------
// The search surface is consistent between kinds of searches.
// ---------------------------------------------------------------

class BudgetScaling : public ::testing::TestWithParam<Time>
{
};

TEST_P(BudgetScaling, MaxActsInverseInTAggOn)
{
    const Time t = GetParam();
    auto timing = dram::benderTiming();
    const auto acts = maxActsWithinBudget(t, timing, 1500, 60_ms);
    const auto acts_double =
        maxActsWithinBudget(2 * t, timing, 1500, 60_ms);
    // Doubling tAggON roughly halves the admissible activations; the
    // fixed per-activation overhead (tRP + command gaps) makes the
    // halving slightly favourable to the longer on-time.
    EXPECT_GE(acts_double, acts / 2);
    EXPECT_LE(acts_double, (acts + 1) * 2 / 3);
}

INSTANTIATE_TEST_SUITE_P(TAggOns, BudgetScaling,
                         ::testing::Values(96_ns, 636_ns, 7800_ns,
                                           70200_ns, 1_ms),
                         [](const ::testing::TestParamInfo<Time> &info) {
                             return sanitize(formatTime(info.param));
                         });

} // namespace
} // namespace rp::chr
