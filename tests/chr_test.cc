/**
 * @file
 * Characterization-suite tests: pattern definitions (Table 2), row
 * layouts, search monotonicity properties (parameterized over dies),
 * retention isolation, and the ONOFF experiment.
 */

#include <gtest/gtest.h>

#include "chr/experiments.h"
#include "chr/overlap.h"

namespace rp::chr {
namespace {

using namespace rp::literals;

TEST(Patterns, Table2Fills)
{
    EXPECT_EQ(aggressorFill(DataPattern::CheckerBoard), 0xAA);
    EXPECT_EQ(victimFill(DataPattern::CheckerBoard), 0x55);
    EXPECT_EQ(aggressorFill(DataPattern::CheckerBoardI), 0x55);
    EXPECT_EQ(victimFill(DataPattern::CheckerBoardI), 0xAA);
    EXPECT_EQ(aggressorFill(DataPattern::RowStripe), 0xFF);
    EXPECT_EQ(victimFill(DataPattern::RowStripe), 0x00);
    EXPECT_EQ(aggressorFill(DataPattern::ColStripe), 0x55);
    EXPECT_EQ(victimFill(DataPattern::ColStripe), 0x55);
    EXPECT_EQ(allDataPatterns().size(), 6u);
}

TEST(Patterns, SingleSidedLayoutHasSixVictims)
{
    auto layout = makeLayout(AccessKind::SingleSided, 1, 100);
    EXPECT_EQ(layout.aggressors, (std::vector<int>{100}));
    EXPECT_EQ(layout.victims,
              (std::vector<int>{97, 98, 99, 101, 102, 103}));
    EXPECT_EQ(layout.lowRow(), 97);
    EXPECT_EQ(layout.highRow(), 103);
}

TEST(Patterns, DoubleSidedLayoutSandwichesVictim)
{
    auto layout = makeLayout(AccessKind::DoubleSided, 1, 100);
    EXPECT_EQ(layout.aggressors, (std::vector<int>{100, 102}));
    EXPECT_EQ(layout.victims,
              (std::vector<int>{97, 98, 99, 101, 103, 104, 105}));
}

TEST(Patterns, PressProgramCountsActivations)
{
    auto timing = dram::benderTiming();
    auto ss = makeLayout(AccessKind::SingleSided, 1, 100);
    EXPECT_EQ(makePressProgram(ss, 36_ns, 1000, timing).commandCount(),
              2000u);
    auto ds = makeLayout(AccessKind::DoubleSided, 1, 100);
    // Odd total activation counts are honoured (trailing single ACT).
    EXPECT_EQ(makePressProgram(ds, 36_ns, 101, timing).commandCount(),
              202u);
}

TEST(Patterns, PressProgramRejectsSubTrasOnTime)
{
    auto timing = dram::benderTiming();
    auto layout = makeLayout(AccessKind::SingleSided, 1, 100);
    EXPECT_DEATH(makePressProgram(layout, 10_ns, 10, timing),
                 "below tRAS");
}

ModuleConfig
tinyConfig(const device::DieConfig &die, double temp = 50.0)
{
    ModuleConfig cfg;
    cfg.die = die;
    cfg.numLocations = 4;
    cfg.temperatureC = temp;
    cfg.seed = 11;
    return cfg;
}

class AcminMonotonic : public ::testing::TestWithParam<device::DieConfig>
{
};

/**
 * Property (Obsv. 1): for RowPress-vulnerable dies, mean ACmin is
 * non-increasing in tAggON across the RowPress regime.
 */
TEST_P(AcminMonotonic, MeanAcminNonIncreasingInPressRegime)
{
    Module module(tinyConfig(GetParam(), 80.0));
    double prev = 1e300;
    for (Time t : {7800_ns, 70200_ns, 1_ms, 10_ms}) {
        auto point = acminPoint(module, t, AccessKind::SingleSided);
        if (point.acminSummary().count == 0)
            continue;
        const double mean = point.meanAcmin();
        EXPECT_LE(mean, prev * 1.15)
            << GetParam().id << " at " << formatTime(t);
        prev = mean;
    }
}

INSTANTIATE_TEST_SUITE_P(
    VulnerableDies, AcminMonotonic,
    ::testing::Values(device::dieById("S-8Gb-B"),
                      device::dieById("S-8Gb-D"),
                      device::dieById("H-16Gb-A"),
                      device::dieById("H-16Gb-C"),
                      device::dieById("M-16Gb-E"),
                      device::dieById("M-16Gb-F")),
    [](const ::testing::TestParamInfo<device::DieConfig> &info) {
        std::string n = info.param.id;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

class CumulativeDoseLaw
    : public ::testing::TestWithParam<device::DieConfig>
{
};

/**
 * Property (Obsv. 3/5): in the press regime, ACmin x tAggON is
 * approximately constant (slope -1 in log-log).
 */
TEST_P(CumulativeDoseLaw, AcminTimesTAggOnIsStable)
{
    Module module(tinyConfig(GetParam()));
    auto p1 = acminPoint(module, 7800_ns, AccessKind::SingleSided);
    auto p2 = acminPoint(module, 70200_ns, AccessKind::SingleSided);
    if (p1.acminSummary().count == 0 || p2.acminSummary().count == 0)
        GTEST_SKIP() << "die not vulnerable at 50C";
    const double d1 = p1.meanAcmin() * 7.8;
    const double d2 = p2.meanAcmin() * 70.2;
    EXPECT_GT(d1 / d2, 0.5) << GetParam().id;
    EXPECT_LT(d1 / d2, 2.0) << GetParam().id;
}

INSTANTIATE_TEST_SUITE_P(
    VulnerableDies, CumulativeDoseLaw,
    ::testing::Values(device::dieById("S-8Gb-B"),
                      device::dieById("S-8Gb-D"),
                      device::dieById("H-16Gb-C"),
                      device::dieById("M-16Gb-F")),
    [](const ::testing::TestParamInfo<device::DieConfig> &info) {
        std::string n = info.param.id;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Acmin, SearchIsDeterministicWithoutNoise)
{
    Module module(tinyConfig(device::dieS8GbB()));
    module.platform().chip().fault().setEvalNoiseSigma(0.0);
    auto layout = makeLayout(AccessKind::SingleSided, 1,
                             module.baseRows()[0]);
    SearchConfig cfg;
    cfg.repeats = 1;
    auto a = findAcmin(module.platform(), layout,
                       DataPattern::CheckerBoard, 7800_ns, cfg);
    auto b = findAcmin(module.platform(), layout,
                       DataPattern::CheckerBoard, 7800_ns, cfg);
    EXPECT_EQ(a.flipped, b.flipped);
    EXPECT_EQ(a.acmin, b.acmin);
}

TEST(Acmin, AccuracyBoundHolds)
{
    // The reported ACmin flips but ACmin * (1 - 2 * accuracy) does not
    // (modulo the 1% search resolution and noise disabled).
    Module module(tinyConfig(device::dieS8GbB()));
    module.platform().chip().fault().setEvalNoiseSigma(0.0);
    auto layout = makeLayout(AccessKind::SingleSided, 1,
                             module.baseRows()[1]);
    SearchConfig cfg;
    cfg.repeats = 1;
    auto res = findAcmin(module.platform(), layout,
                         DataPattern::CheckerBoard, 7800_ns, cfg);
    ASSERT_TRUE(res.flipped);
    auto at = runPressAttempt(module.platform(), layout,
                              DataPattern::CheckerBoard, 7800_ns,
                              res.acmin);
    EXPECT_TRUE(at.any());
    auto below = runPressAttempt(
        module.platform(), layout, DataPattern::CheckerBoard, 7800_ns,
        std::uint64_t(double(res.acmin) * 0.9));
    EXPECT_FALSE(below.any());
}

TEST(Acmin, TAggOnMinAndAcminAreConsistent)
{
    // findTAggOnMin(AC) and findAcmin(tAggON) probe the same
    // cumulative-dose surface: tAggONmin(ACmin(t)) ~ t.
    Module module(tinyConfig(device::dieS8GbD()));
    module.platform().chip().fault().setEvalNoiseSigma(0.0);
    auto layout = makeLayout(AccessKind::SingleSided, 1,
                             module.baseRows()[2]);
    SearchConfig cfg;
    cfg.repeats = 1;
    auto ac = findAcmin(module.platform(), layout,
                        DataPattern::CheckerBoard, 70200_ns, cfg);
    ASSERT_TRUE(ac.flipped);
    auto ton = findTAggOnMin(module.platform(), layout,
                             DataPattern::CheckerBoard, ac.acmin, cfg);
    ASSERT_TRUE(ton.flipped);
    EXPECT_LT(toUs(ton.tAggOnMin), 70.2 * 1.3);
    EXPECT_GT(toUs(ton.tAggOnMin), 70.2 * 0.5);
}

TEST(Experiments, RowStripeCannotFlipAtLongTAggOn)
{
    // Obsv. 14/15: with all-zero victims (RowStripe), RowPress has no
    // eligible (charged) cells to drain.
    Module module(tinyConfig(device::dieS8GbB(), 80.0));
    auto point = acminPoint(module, 7800_ns, AccessKind::SingleSided,
                            DataPattern::RowStripe);
    EXPECT_EQ(point.acminSummary().count, 0u);
}

TEST(Experiments, RetentionFailuresExistAndAreIsolatedFromShortTests)
{
    Module module(tinyConfig(device::dieS8GbB()));
    // 4 s @ 80C produces retention failures...
    auto fails = retentionFailures(module, 4.0, 80.0);
    for (const auto &f : fails)
        EXPECT_EQ(f.flip.mechanism, device::Mechanism::Retention);
    // ...but a 60 ms idle at 50C produces none (the paper's
    // interference-isolation requirement, section 3.1).
    auto &platform = module.platform();
    platform.fillRow(1, 500, 0x55);
    bender::Program idle;
    idle.wait(60_ms);
    platform.run(idle);
    EXPECT_TRUE(platform.checkRow(1, 500).empty());
}

TEST(Experiments, OnOffBerRespondsToOnFraction)
{
    Module module(tinyConfig(device::dieS8GbD(), 80.0));
    // At large dtA2A, more on-time must not reduce BER (press-regime).
    const double low = onOffBer(module, 0, AccessKind::SingleSided,
                                6000_ns, 0.0, 1);
    const double high = onOffBer(module, 0, AccessKind::SingleSided,
                                 6000_ns, 1.0, 1);
    EXPECT_GE(high, low);
    EXPECT_GT(high, 0.0);
}

TEST(Experiments, StandardSweepIsSortedAndCoversPaperRange)
{
    const auto &sweep = standardTAggOnSweep();
    EXPECT_EQ(sweep.front(), 36_ns);
    EXPECT_EQ(sweep.back(), 30_ms);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_LT(sweep[i - 1], sweep[i]);
}

TEST(Overlap, SetOperations)
{
    std::vector<VictimFlip> flips = {
        {100, {5, true, device::Mechanism::RowPress}},
        {100, {5, true, device::Mechanism::RowPress}}, // duplicate
        {101, {9, false, device::Mechanism::RowHammer}},
    };
    auto ids = flipIdSet(flips);
    EXPECT_EQ(ids.size(), 2u);

    EXPECT_DOUBLE_EQ(overlapFraction({}, ids), 0.0);
    EXPECT_DOUBLE_EQ(overlapFraction(ids, ids), 1.0);
    EXPECT_DOUBLE_EQ(overlapFraction(ids, {ids[0]}), 0.5);
}

TEST(Overlap, RowPressVsRowHammerIsNearZero)
{
    Module module(tinyConfig(device::dieS8GbD(), 80.0));
    auto results =
        overlapAtAcmin(module, {7800_ns}, AccessKind::SingleSided);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].rpCells, 0u);
    EXPECT_LT(results[0].withRowHammer, 0.05);
    EXPECT_LT(results[0].withRetention, 0.05);
}

} // namespace
} // namespace rp::chr
