/**
 * @file
 * ExperimentEngine tests: deterministic seed derivation, bit-identical
 * results at 1 vs N threads, ordered result collection, exception
 * propagation, and the empty-task-set edge case.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/engine.h"

namespace rp::core {
namespace {

ExperimentEngine::Options
withThreads(int n, std::uint64_t root_seed = 1)
{
    ExperimentEngine::Options opts;
    opts.numThreads = n;
    opts.rootSeed = root_seed;
    return opts;
}

TEST(Engine, ThreadCountHonoursOptions)
{
    ExperimentEngine one(withThreads(1));
    EXPECT_EQ(one.numThreads(), 1);
    ExperimentEngine four(withThreads(4));
    EXPECT_EQ(four.numThreads(), 4);
}

TEST(Engine, TaskSeedIsPureFunctionOfRootSeedAndIndex)
{
    const std::uint64_t s0 = ExperimentEngine::taskSeed(1, 0);
    EXPECT_EQ(s0, ExperimentEngine::taskSeed(1, 0));
    EXPECT_NE(s0, ExperimentEngine::taskSeed(1, 1));
    EXPECT_NE(s0, ExperimentEngine::taskSeed(2, 0));
}

TEST(Engine, MapReturnsResultsInIndexOrder)
{
    ExperimentEngine engine(withThreads(4));
    // Earlier tasks sleep longer, so completion order is reversed;
    // results must still come back in index order.
    auto out = engine.map<std::size_t>(16, [](const TaskContext &ctx) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(200 * (16 - ctx.index)));
        return ctx.index * 10;
    });
    ASSERT_EQ(out.size(), 16u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * 10);
}

TEST(Engine, SameRootSeedIsBitIdenticalAcrossThreadCounts)
{
    auto job = [](const TaskContext &ctx) {
        // Derive a chaotic but deterministic value from the task seed.
        Rng rng(ctx.seed);
        double acc = 0.0;
        for (int i = 0; i < 100; ++i)
            acc += rng.normal();
        return acc;
    };

    ExperimentEngine serial(withThreads(1, 42));
    ExperimentEngine parallel(withThreads(4, 42));
    auto a = serial.map<double>(64, job);
    auto b = parallel.map<double>(64, job);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "diverged at task " << i;

    // A different root seed must change the stream.
    ExperimentEngine other(withThreads(4, 43));
    auto c = other.map<double>(64, job);
    EXPECT_NE(a.front(), c.front());
}

TEST(Engine, RunOptionsRootSeedOverridesEngineSeed)
{
    auto job = [](const TaskContext &ctx) { return ctx.seed; };

    ExperimentEngine engine(withThreads(2, 1));
    ExperimentEngine::RunOptions opts;
    opts.rootSeed = 7;
    auto seeds = engine.map<std::uint64_t>(4, job, opts);
    for (std::size_t i = 0; i < seeds.size(); ++i)
        EXPECT_EQ(seeds[i], ExperimentEngine::taskSeed(7, i));
}

TEST(Engine, ExceptionPropagatesToCaller)
{
    ExperimentEngine engine(withThreads(4));
    std::vector<ExperimentEngine::Task> tasks;
    for (int i = 0; i < 32; ++i) {
        tasks.push_back([](const TaskContext &ctx) {
            if (ctx.index == 13)
                throw std::runtime_error("task 13 failed");
        });
    }
    EXPECT_THROW(engine.run(std::move(tasks)), std::runtime_error);

    // The engine stays usable after a failed run.
    auto out = engine.map<int>(8, [](const TaskContext &ctx) {
        return int(ctx.index);
    });
    ASSERT_EQ(out.size(), 8u);
    EXPECT_EQ(out[7], 7);
}

TEST(Engine, EmptyTaskSetReturnsImmediately)
{
    ExperimentEngine engine(withThreads(2));
    engine.run({});
    auto out = engine.map<int>(0, [](const TaskContext &) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(Engine, ProgressReportsEveryTask)
{
    ExperimentEngine engine(withThreads(4));
    std::atomic<std::size_t> calls{0};
    std::size_t last_done = 0;
    std::size_t last_total = 0;

    std::vector<ExperimentEngine::Task> tasks;
    for (int i = 0; i < 20; ++i)
        tasks.push_back([](const TaskContext &) {});

    ExperimentEngine::RunOptions opts;
    opts.progress = [&](std::size_t done, std::size_t total) {
        ++calls;
        last_done = done;
        last_total = total;
    };
    engine.run(std::move(tasks), opts);

    EXPECT_EQ(calls.load(), 20u);
    EXPECT_EQ(last_done, 20u);
    EXPECT_EQ(last_total, 20u);
}

TEST(Engine, ManyMoreTasksThanWorkersCompletes)
{
    ExperimentEngine engine(withThreads(3));
    std::atomic<int> count{0};
    std::vector<ExperimentEngine::Task> tasks;
    for (int i = 0; i < 500; ++i)
        tasks.push_back([&](const TaskContext &) { ++count; });
    engine.run(std::move(tasks));
    EXPECT_EQ(count.load(), 500);
}

TEST(Engine, DefaultThreadCountHonoursEnv)
{
    setenv("RP_THREADS", "3", 1);
    EXPECT_EQ(ExperimentEngine::defaultThreadCount(), 3);
    unsetenv("RP_THREADS");
    EXPECT_GE(ExperimentEngine::defaultThreadCount(), 1);
}

} // namespace
} // namespace rp::core
