/**
 * @file
 * Public-facade tests: the end-to-end section 7.4 workflow - measure
 * a device's disturbance profile, derive an adapted mitigation
 * configuration, and validate its security properties.
 */

#include <gtest/gtest.h>

#include "core/rowpress.h"

namespace rp {
namespace {

using namespace rp::literals;

TEST(Core, VersionString)
{
    EXPECT_STREQ(version(), "1.0.0");
}

TEST(Core, MeasuredProfileIsMonotonicAndBelowOne)
{
    ProfileOptions opts;
    opts.numLocations = 4;
    opts.temperatures = {80.0};
    opts.kinds = {chr::AccessKind::SingleSided};
    auto profile = characterizeProfile(device::dieS8GbB(), opts);
    ASSERT_EQ(profile.points.size(), opts.tMros.size());

    double prev = 1.0;
    for (const auto &p : profile.points) {
        EXPECT_LE(p.acminRatio, 1.0);
        EXPECT_GT(p.acminRatio, 0.0);
        EXPECT_LE(p.acminRatio, prev + 1e-9); // non-increasing
        prev = p.acminRatio;
    }
    // At t_mro = tRAS there is no RowPress amplification to speak of.
    EXPECT_GT(profile.points.front().acminRatio, 0.8);
}

TEST(Core, MeasuredProfileYieldsSoundAdaptation)
{
    ProfileOptions opts;
    opts.numLocations = 4;
    opts.temperatures = {80.0};
    opts.kinds = {chr::AccessKind::SingleSided};
    auto profile = characterizeProfile(device::dieS8GbB(), opts);
    EXPECT_TRUE(mitigation::adaptationIsSound(profile, 1000,
                                              opts.tMros));
    const auto cfg =
        mitigation::adaptThreshold(profile, 1000, 636_ns);
    EXPECT_LT(cfg.adaptedTrh, 1000u);
    EXPECT_GE(cfg.adaptedTrh, 1u);
}

TEST(Core, UmbrellaHeaderExposesAllSubsystems)
{
    // Compile-time façade check: one symbol from each subsystem.
    [[maybe_unused]] device::DieConfig die = device::dieS8GbB();
    [[maybe_unused]] chr::DataPattern dp = chr::DataPattern::CheckerBoard;
    [[maybe_unused]] sys::DemoConfig demo;
    [[maybe_unused]] sim::SystemConfig sim_cfg;
    [[maybe_unused]] mitigation::ParaConfig para;
    [[maybe_unused]] workloads::WorkloadParams w;
    SUCCEED();
}

} // namespace
} // namespace rp
