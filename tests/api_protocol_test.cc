/**
 * @file
 * Serve-protocol tests: the minimal JSON parser/serializer, the
 * machine-readable experiment listing shared with `rowpress list
 * --format json`, and a full NDJSON session against a Service —
 * submit/status/list/cancel/cache verbs, error responses for
 * malformed requests, tag echo, and the EOF drain that makes
 * `printf ... | rowpress serve` run everything it was fed.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "api/cli.h"
#include "api/context.h"
#include "api/protocol.h"
#include "api/service.h"

namespace rp::api {
namespace {

namespace fs = std::filesystem;

struct RegisterDummies
{
    RegisterDummies()
    {
        ExperimentRegistry::instance().add(
            {{"zzproto_a", "Protocol dummy A", "none", "test"},
             [](ConfigSchema &schema) {
                 schema.add({"knob", OptionType::Int, "5", "",
                             "dummy knob", 0.0, true});
             },
             [](ExperimentContext &ctx) {
                 Dataset d("proto table");
                 d.header({"k", "v"});
                 d.rowf("knob", ctx.config().getInt("knob"));
                 ctx.emit(d);
                 ctx.note("proto note\n");
             }});
    }
};
const RegisterDummies register_dummies;

TEST(ApiJson, ParseScalarsAndNesting)
{
    EXPECT_EQ(parseJson("null").kind, JsonValue::Kind::Null);
    EXPECT_TRUE(parseJson("true").boolean);
    EXPECT_FALSE(parseJson("false").boolean);
    EXPECT_EQ(parseJson(" -12.5e3 ").text, "-12.5e3");
    EXPECT_EQ(parseJson("\"a\\n\\\"b\\\\\"").text, "a\n\"b\\");
    EXPECT_EQ(parseJson("\"\\u0041\\u00e9\"").text, "A\xc3\xa9");
    // Surrogate pair (U+1F600).
    EXPECT_EQ(parseJson("\"\\ud83d\\ude00\"").text,
              "\xf0\x9f\x98\x80");

    const JsonValue v = parseJson(
        "{\"a\": [1, \"two\", {\"b\": true}], \"c\": null}");
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_EQ(a->items[0].text, "1");
    EXPECT_EQ(a->items[1].text, "two");
    EXPECT_TRUE(a->items[2].find("b")->boolean);
    EXPECT_EQ(v.find("c")->kind, JsonValue::Kind::Null);
    EXPECT_EQ(v.find("zz"), nullptr);
}

TEST(ApiJson, ParseRejectsMalformed)
{
    EXPECT_THROW(parseJson(""), ConfigError);
    EXPECT_THROW(parseJson("{"), ConfigError);
    EXPECT_THROW(parseJson("{\"a\":1} trailing"), ConfigError);
    EXPECT_THROW(parseJson("{'a':1}"), ConfigError);
    EXPECT_THROW(parseJson("\"\\q\""), ConfigError);
    EXPECT_THROW(parseJson("\"unterminated"), ConfigError);
    EXPECT_THROW(parseJson("01"), ConfigError);
    EXPECT_THROW(parseJson("nulle"), ConfigError);
    EXPECT_THROW(parseJson("\"\\ud83d\""), ConfigError); // lone high surrogate
    EXPECT_THROW(parseJson("\"\\udc00\""), ConfigError); // lone low surrogate
    // Raw control characters must be escaped.
    EXPECT_THROW(parseJson(std::string("\"a\nb\"")), ConfigError);
}

TEST(ApiJson, SerializeRoundTripsAndScalarText)
{
    JsonValue obj = JsonValue::object();
    obj.add("n", JsonValue::number("42"));
    obj.add("s", JsonValue::string("a\"b\n"));
    obj.add("b", JsonValue::makeBool(true));
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue::number(1.5));
    arr.push(JsonValue::makeNull());
    obj.add("a", std::move(arr));

    const std::string compact = toJson(obj);
    EXPECT_EQ(compact,
              "{\"n\":42,\"s\":\"a\\\"b\\n\",\"b\":true,"
              "\"a\":[1.5,null]}");
    EXPECT_EQ(compact.find('\n'), std::string::npos);

    // Pretty form parses back to the same structure.
    const JsonValue reparsed = parseJson(toJson(obj, 2));
    EXPECT_EQ(toJson(reparsed), compact);

    EXPECT_EQ(parseJson("65").scalarText("x"), "65");
    EXPECT_EQ(parseJson("\"65\"").scalarText("x"), "65");
    EXPECT_EQ(parseJson("true").scalarText("x"), "1");
    EXPECT_THROW(parseJson("[1]").scalarText("x"), ConfigError);
}

TEST(ApiProtocol, ExperimentListingSharedWithCli)
{
    const JsonValue listing = experimentListJson({"zzproto_*"});
    const JsonValue *experiments = listing.find("experiments");
    ASSERT_NE(experiments, nullptr);
    ASSERT_EQ(experiments->items.size(), 1u);
    const JsonValue &e = experiments->items[0];
    EXPECT_EQ(e.find("id")->text, "zzproto_a");
    EXPECT_EQ(e.find("category")->text, "test");
    // Options cover the base schema plus the declared knob.
    const JsonValue *options = e.find("options");
    ASSERT_NE(options, nullptr);
    bool saw_knob = false, saw_threads = false;
    for (const JsonValue &o : options->items) {
        if (o.find("key")->text == "knob") {
            saw_knob = true;
            EXPECT_EQ(o.find("type")->text, "int");
            EXPECT_EQ(o.find("default")->text, "5");
        }
        if (o.find("key")->text == "threads")
            saw_threads = true;
    }
    EXPECT_TRUE(saw_knob);
    EXPECT_TRUE(saw_threads);

    // `rowpress list --format json` prints the same document.
    std::ostringstream out, err;
    ASSERT_EQ(runCli({"list", "zzproto_*", "--format", "json"}, out,
                     err),
              0);
    EXPECT_EQ(toJson(parseJson(out.str())), toJson(listing));
}

/** One full stdio session: verbs, errors, events, and the EOF drain. */
TEST(ApiProtocol, ServeSessionEndToEnd)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "rp_proto_session";
    fs::remove_all(dir);

    std::istringstream in(
        "\n"
        "{\"op\":\"submit\",\"experiment\":\"zzproto_a\","
        "\"config\":{\"knob\":7,\"threads\":\"1\"},"
        "\"formats\":[\"csv\",\"json\"],"
        "\"out\":\"" + (dir / "out").string() + "\",\"tag\":\"j1\"}\n"
        "not json\n"
        "{\"op\":\"submit\",\"experiment\":\"zz_missing\"}\n"
        "{\"nop\":1}\n"
        "{\"op\":\"frobnicate\"}\n"
        "{\"op\":\"list\",\"glob\":\"zzproto_*\"}\n"
        "{\"op\":\"cancel\",\"job\":999}\n"
        "{\"op\":\"cache\"}\n"
        "{\"op\":\"status\"}\n"
        "{\"op\":\"status\",\"job\":999,\"tag\":\"e1\"}\n");
    std::ostringstream out;

    Service service;
    EXPECT_EQ(serveSession(service, in, out), 0);

    // Session ended at EOF after draining: the job must be finished
    // and its artifacts final.
    EXPECT_TRUE(fs::exists(dir / "out" / "zzproto_a" / "result.json"));
    EXPECT_TRUE(
        fs::exists(dir / "out" / "zzproto_a" / "proto_table.csv"));

    // Every line is one valid JSON object.
    std::istringstream lines(out.str());
    std::string line;
    std::vector<JsonValue> responses, events;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        JsonValue v = parseJson(line);
        ASSERT_EQ(v.kind, JsonValue::Kind::Object);
        if (v.find("event"))
            events.push_back(std::move(v));
        else
            responses.push_back(std::move(v));
    }

    ASSERT_EQ(responses.size(), 10u);
    // submit: ok, job id, tag echoed.
    EXPECT_TRUE(responses[0].find("ok")->boolean);
    EXPECT_EQ(responses[0].find("op")->text, "submit");
    EXPECT_EQ(responses[0].find("tag")->text, "j1");
    EXPECT_EQ(responses[0].find("job")->text, "1");
    // Malformed line, unknown experiment, missing op, unknown op: all
    // errors, and the session keeps serving.
    for (int i = 1; i <= 4; ++i) {
        EXPECT_FALSE(responses[std::size_t(i)].find("ok")->boolean)
            << i;
        EXPECT_NE(responses[std::size_t(i)].find("error"), nullptr);
    }
    // list shares the experimentListJson document.
    const JsonValue *experiments = responses[5].find("experiments");
    ASSERT_NE(experiments, nullptr);
    EXPECT_EQ(experiments->items[0].find("id")->text, "zzproto_a");
    // cancel of an unknown job: ok response, cancelled=false.
    EXPECT_TRUE(responses[6].find("ok")->boolean);
    EXPECT_FALSE(responses[6].find("cancelled")->boolean);
    // cache: warm-cache report present.
    ASSERT_NE(responses[7].find("warm_cache"), nullptr);
    // status (no job): every job listed, with the warm-cache report.
    const JsonValue *jobs = responses[8].find("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_EQ(jobs->items.size(), 1u);
    EXPECT_EQ(jobs->items[0].find("experiment")->text, "zzproto_a");
    ASSERT_NE(responses[8].find("warm_cache"), nullptr);
    // A failing request still echoes its tag (correlation matters
    // most on errors).
    EXPECT_FALSE(responses[9].find("ok")->boolean);
    ASSERT_NE(responses[9].find("tag"), nullptr);
    EXPECT_EQ(responses[9].find("tag")->text, "e1");
    ASSERT_NE(responses[9].find("error"), nullptr);
    // Events: the job's stream opens with queued and closes finished.
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events.front().find("event")->text, "queued");
    bool saw_started = false, saw_finished = false, saw_dataset = false;
    for (const JsonValue &event : events) {
        const std::string kind = event.find("event")->text;
        saw_started = saw_started || kind == "started";
        saw_finished = saw_finished || kind == "finished";
        saw_dataset = saw_dataset || kind == "dataset";
        EXPECT_EQ(event.find("experiment")->text, "zzproto_a");
    }
    EXPECT_TRUE(saw_started);
    EXPECT_TRUE(saw_dataset);
    EXPECT_TRUE(saw_finished);

    // The submitted overlay (knob=7 as a JSON number) resolved as
    // config text; the started event carries it.
    for (const JsonValue &event : events) {
        if (event.find("event")->text != "started")
            continue;
        const JsonValue *config = event.find("config");
        ASSERT_NE(config, nullptr);
        const JsonValue *knob = config->find("knob");
        ASSERT_NE(knob, nullptr);
        EXPECT_EQ(knob->find("value")->text, "7");
        EXPECT_EQ(knob->find("origin")->text, "cli");
    }
}

TEST(ApiProtocol, RequestsRejectUnknownMembers)
{
    // A typo'd member ("format" for "formats") must error, never
    // silently run the job with defaults.
    std::istringstream in(
        "{\"op\":\"submit\",\"experiment\":\"zzproto_a\","
        "\"format\":[\"json\"]}\n"
        "{\"op\":\"status\",\"glob\":\"*\"}\n");
    std::ostringstream out;
    Service service;
    EXPECT_EQ(serveSession(service, in, out), 0);

    std::istringstream lines(out.str());
    std::string line;
    std::size_t errors = 0;
    while (std::getline(lines, line)) {
        const JsonValue v = parseJson(line);
        if (v.find("event"))
            continue;
        EXPECT_FALSE(v.find("ok")->boolean);
        EXPECT_NE(v.find("error")->text.find("unknown member"),
                  std::string::npos);
        ++errors;
    }
    EXPECT_EQ(errors, 2u);
    // Nothing ran.
    EXPECT_TRUE(service.jobs().empty());
}

TEST(ApiProtocol, ServeRejectsRunOnlyFlags)
{
    // These rejections happen before any stdin is read.
    for (const std::vector<std::string> &args :
         {std::vector<std::string>{"serve", "--out", "x"},
          std::vector<std::string>{"serve", "--format", "json"},
          std::vector<std::string>{"serve", "--time"},
          std::vector<std::string>{"serve", "--all"},
          std::vector<std::string>{"serve", "fig06"},
          std::vector<std::string>{"serve", "--jobs", "0"},
          std::vector<std::string>{"serve", "--port", "99999"},
          std::vector<std::string>{"serve", "--bogus", "1"}}) {
        std::ostringstream out, err;
        EXPECT_EQ(runCli(args, out, err), 2) << args[1];
    }
}

TEST(ApiProtocol, ShutdownVerbEndsSessionBeforeEof)
{
    std::istringstream in(
        "{\"op\":\"shutdown\"}\n"
        "{\"op\":\"list\"}\n"); // never reached
    std::ostringstream out;
    Service service;
    EXPECT_EQ(serveSession(service, in, out), 0);

    std::istringstream lines(out.str());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        const JsonValue v = parseJson(line);
        EXPECT_EQ(v.find("op")->text, "shutdown");
        EXPECT_TRUE(v.find("ok")->boolean);
        ++n;
    }
    EXPECT_EQ(n, 1u);

    // The service is stopped: further submissions are rejected.
    JobRequest req;
    req.experiment = "zzproto_a";
    EXPECT_THROW(service.submit(req), ConfigError);
}

} // namespace
} // namespace rp::api
