/**
 * @file
 * Device-model tests: die registry, calibration derivation, per-cell
 * determinism, eligibility/direction rules, dose accounting, and chip
 * materialization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "device/chip.h"
#include "dram/timing.h"

namespace rp::device {
namespace {

using namespace rp::literals;

dram::Organization
smallOrg()
{
    dram::Organization org;
    org.rows = 4096;
    return org;
}

TEST(DieRegistry, HasAllTwelveRevisions)
{
    EXPECT_EQ(allDies().size(), 12u);
    int s = 0, h = 0, m = 0;
    for (const auto &d : allDies()) {
        if (d.mfr == "S")
            ++s;
        if (d.mfr == "H")
            ++h;
        if (d.mfr == "M")
            ++m;
    }
    EXPECT_EQ(s, 4);
    EXPECT_EQ(h, 4);
    EXPECT_EQ(m, 4);
}

TEST(DieRegistry, LookupByIdAndImmunity)
{
    EXPECT_EQ(dieById("S-8Gb-B").name, "Mfr. S 8Gb B-Die");
    EXPECT_TRUE(dieById("M-8Gb-B").rpImmuneAt50());
    EXPECT_TRUE(dieById("H-4Gb-A").rpImmuneAt50());
    EXPECT_FALSE(dieById("S-8Gb-B").rpImmuneAt50());
    EXPECT_DEATH(dieById("nope"), "unknown die");
}

class CalibrationTest : public ::testing::TestWithParam<DieConfig>
{
};

TEST_P(CalibrationTest, DerivedParametersAreSane)
{
    const auto &die = GetParam();
    CellModel cells(die, 65536, 1);
    const auto &p = cells.params();

    EXPECT_GE(p.sigmaH, 0.30);
    EXPECT_LE(p.sigmaH, 1.20);
    EXPECT_GE(p.sigmaP, 0.20);
    EXPECT_LE(p.sigmaP, 0.80);
    EXPECT_GT(p.muH, 0.0);
    EXPECT_GT(p.muP, 0.0);

    // The mu/sigma pair must reproduce the row-min calibration target:
    // quantile 2/bits of thetaH ~ Table 5 ACmin x DS gain.
    const double z1 = probit(2.0 / 65536.0);
    const double row_min_theta = std::exp(p.muH + p.sigmaH * z1);
    EXPECT_NEAR(std::log(row_min_theta / die.acminRh50), std::log(2.9),
                0.5);

    // And D_RP: quantile 4/bits of thetaP ~ mean cumulative dose.
    const double z1p = probit(4.0 / 65536.0);
    const double d50 = std::exp(p.muP + p.sigmaP * z1p);
    EXPECT_NEAR(d50 / double(units::MS), die.rpDose50Ms,
                0.01 * die.rpDose50Ms);
}

TEST_P(CalibrationTest, TemperatureFactorsMatchTargets)
{
    const auto &die = GetParam();
    CellModel cells(die, 65536, 1);
    // 80C press acceleration must equal the Table 5 dose ratio.
    EXPECT_NEAR(cells.pressTempFactor(80.0),
                die.rpDose50Ms / die.rpDose80Ms, 1e-6);
    EXPECT_NEAR(cells.pressTempFactor(50.0), 1.0, 1e-12);
    EXPECT_NEAR(cells.hammerTempFactor(80.0),
                die.acminRh50 / die.acminRh80, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllDies, CalibrationTest, ::testing::ValuesIn(allDies()),
    [](const ::testing::TestParamInfo<DieConfig> &info) {
        std::string name = info.param.id;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(CellModel, PerCellPropertiesAreDeterministic)
{
    CellModel a(dieS8GbB(), 65536, 7);
    CellModel b(dieS8GbB(), 65536, 7);
    CellModel c(dieS8GbB(), 65536, 8);
    EXPECT_EQ(a.thetaHammer(1, 100, 5), b.thetaHammer(1, 100, 5));
    EXPECT_EQ(a.thetaPress(1, 100, 5), b.thetaPress(1, 100, 5));
    EXPECT_NE(a.thetaHammer(1, 100, 5), c.thetaHammer(1, 100, 5));
    EXPECT_NE(a.thetaHammer(1, 100, 5), a.thetaHammer(1, 100, 6));
    EXPECT_NE(a.thetaHammer(1, 100, 5), a.thetaHammer(2, 100, 5));
}

TEST(CellModel, CandidatesContainTheRowWeakestCells)
{
    CellModel cells(dieS8GbB(), 65536, 3);
    const auto &cands = cells.rowCandidates(1, 50);
    ASSERT_GT(cands.size(), 0u);
    double cand_min_h = 1e300, cand_min_p = 1e300;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        cand_min_h = std::min(cand_min_h, cands.thetaH[i]);
        cand_min_p = std::min(cand_min_p, cands.thetaP[i]);
    }
    // The precomputed row minima agree with the scan.
    EXPECT_DOUBLE_EQ(cands.minThetaH, cand_min_h);
    EXPECT_DOUBLE_EQ(cands.minThetaP, cand_min_p);
    // Exhaustive scan agrees on the row minima.
    double true_min_h = 1e300, true_min_p = 1e300;
    for (int bit = 0; bit < 65536; ++bit) {
        true_min_h = std::min(true_min_h, cells.thetaHammer(1, 50, bit));
        true_min_p = std::min(true_min_p, cells.thetaPress(1, 50, bit));
    }
    EXPECT_DOUBLE_EQ(cand_min_h, true_min_h);
    EXPECT_DOUBLE_EQ(cand_min_p, true_min_p);
}

TEST(CellModel, HammerOnlyFlipsDischargedCells)
{
    CellModel cells(dieS8GbB(), 65536, 3);
    DoseState dose;
    dose.hammer[0] = dose.hammer[1] = 1e9; // absurd dose
    RowContext ctx;
    ctx.dose = &dose;
    ctx.victimFill = 0xFF; // all bits 1 = all charged (true cells)
    auto flips = cells.evaluate(1, 10, ctx, /*full_scan=*/false, 50.0);
    EXPECT_TRUE(flips.empty());

    ctx.victimFill = 0x00; // all discharged
    flips = cells.evaluate(1, 10, ctx, false, 50.0);
    EXPECT_FALSE(flips.empty());
    for (const auto &f : flips) {
        EXPECT_EQ(f.mechanism, Mechanism::RowHammer);
        EXPECT_FALSE(f.oneToZero); // 0 -> 1
    }
}

TEST(CellModel, PressOnlyFlipsChargedCells)
{
    CellModel cells(dieS8GbB(), 65536, 3);
    DoseState dose;
    dose.press[0] = dose.press[1] = 1e12 * 1e3; // huge on-time
    RowContext ctx;
    ctx.dose = &dose;
    ctx.victimFill = 0x00; // all discharged: press cannot flip
    auto flips = cells.evaluate(1, 11, ctx, false, 50.0);
    EXPECT_TRUE(flips.empty());

    ctx.victimFill = 0xFF;
    flips = cells.evaluate(1, 11, ctx, false, 50.0);
    EXPECT_FALSE(flips.empty());
    for (const auto &f : flips) {
        EXPECT_EQ(f.mechanism, Mechanism::RowPress);
        EXPECT_TRUE(f.oneToZero); // 1 -> 0
    }
}

TEST(CellModel, AntiCellLayoutInvertsDirections)
{
    DieConfig die = dieById("M-16Gb-E"); // mostly anti-cells
    CellModel cells(die, 65536, 3);
    DoseState dose;
    dose.press[0] = dose.press[1] = 1e15;
    RowContext ctx;
    ctx.dose = &dose;
    ctx.victimFill = 0x55;
    auto flips = cells.evaluate(1, 12, ctx, false, 50.0);
    ASSERT_FALSE(flips.empty());
    int zero_to_one = 0;
    for (const auto &f : flips)
        zero_to_one += f.oneToZero ? 0 : 1;
    // Anti-cells store logical 0 charged, so press flips mostly 0->1.
    EXPECT_GT(double(zero_to_one) / double(flips.size()), 0.6);
}

TEST(CellModel, RetentionFlipsAreAttributed)
{
    CellModel cells(dieS8GbB(), 65536, 3);
    DoseState dose; // empty
    RowContext ctx;
    ctx.dose = &dose;
    ctx.victimFill = 0xFF;
    ctx.retentionSeconds = 3600.0; // an hour unrefreshed at 80C
    auto flips = cells.evaluate(1, 13, ctx, false, 80.0);
    ASSERT_FALSE(flips.empty());
    for (const auto &f : flips)
        EXPECT_EQ(f.mechanism, Mechanism::Retention);
}

TEST(CellModel, HammerOffWeightIsNormalizedAndMonotonic)
{
    CellModel cells(dieS8GbB(), 65536, 3);
    EXPECT_NEAR(cells.hammerOffWeight(15_ns), 1.0, 1e-9);
    double prev = 0.0;
    for (Time t : {1_ns, 15_ns, 100_ns, 500_ns, 2000_ns, 50000_ns}) {
        const double w = cells.hammerOffWeight(t);
        EXPECT_GT(w, prev);
        prev = w;
    }
    // Unknown history saturates.
    EXPECT_NEAR(cells.hammerOffWeight(-1),
                cells.hammerOffWeight(1_s), 1e-6);
}

TEST(CellModel, DoubleSidedSynergyRaisesDamage)
{
    CellModel cells(dieS8GbB(), 65536, 3);
    // Same total hammer dose, split vs one-sided: the sandwiched
    // distribution must flip at least as many cells.
    DoseState split, single;
    split.hammer[0] = split.hammer[1] = 1e6;
    single.hammer[0] = 2e6;
    RowContext ctx;
    ctx.victimFill = 0x00;
    ctx.dose = &split;
    auto flips_split = cells.evaluate(1, 14, ctx, false, 50.0);
    ctx.dose = &single;
    auto flips_single = cells.evaluate(1, 14, ctx, false, 50.0);
    EXPECT_GT(flips_split.size(), flips_single.size());
}

TEST(FaultModel, HammerDoseGoesToNeighborsWithAttenuation)
{
    FaultModel fm(dieS8GbB(), smallOrg(), 1);
    fm.onActivate(0, 100, 0);
    const auto &p = fm.cells().params();
    const double d1 = fm.dose(0, 101).hammer[0];
    const double d2 = fm.dose(0, 102).hammer[0];
    const double d3 = fm.dose(0, 103).hammer[0];
    EXPECT_GT(d1, 0.0);
    EXPECT_NEAR(d2 / d1, p.dist2Rh, 1e-9);
    EXPECT_NEAR(d3 / d1, p.dist3Rh, 1e-9);
    EXPECT_EQ(fm.dose(0, 104).hammer[0], 0.0);
    // Side convention: aggressor below -> side 0; above -> side 1.
    EXPECT_GT(fm.dose(0, 101).hammer[0], 0.0);
    EXPECT_EQ(fm.dose(0, 101).hammer[1], 0.0);
    EXPECT_GT(fm.dose(0, 99).hammer[1], 0.0);
    EXPECT_EQ(fm.dose(0, 99).hammer[0], 0.0);
}

TEST(FaultModel, PressDoseScalesWithOnTimeAndTemperature)
{
    FaultModel fm(dieS8GbB(), smallOrg(), 1);
    fm.setTemperature(50.0);
    fm.onPrecharge(0, 100, 0, 10_us);
    const double d50 = fm.dose(0, 101).press[0];
    fm.onRestore(0, 101, 0);
    fm.setTemperature(80.0);
    fm.onPrecharge(0, 100, 10_us, 20_us);
    const double d80 = fm.dose(0, 101).press[0];
    EXPECT_GT(d50, 0.0);
    EXPECT_NEAR(d80 / d50, fm.cells().pressTempFactor(80.0), 1e-6);
}

TEST(FaultModel, PressOnsetSubtractsPerInterval)
{
    FaultModel fm(dieS8GbB(), smallOrg(), 1);
    const Time onset = fm.cells().params().pressOnset;
    fm.onPrecharge(0, 100, 0, onset); // exactly the onset: no dose
    EXPECT_EQ(fm.dose(0, 101).press[0], 0.0);
    fm.onPrecharge(0, 100, 0, onset + 100_ns);
    EXPECT_NEAR(fm.dose(0, 101).press[0], double(100_ns), 1.0);
}

TEST(FaultModel, RestoreClearsDoseAndStartsRetention)
{
    FaultModel fm(dieS8GbB(), smallOrg(), 1);
    fm.onActivate(0, 100, 0);
    EXPECT_FALSE(fm.dose(0, 101).empty());
    fm.onRestore(0, 101, 1_ms);
    EXPECT_TRUE(fm.dose(0, 101).empty());
    EXPECT_NEAR(fm.retentionSeconds(0, 101, 1_ms + 2_s),
                2.0 * fm.cells().retentionTempFactor(50.0), 1e-9);
}

TEST(FaultModel, SnapshotScaleReplaysLinearGrowth)
{
    FaultModel fm(dieS8GbB(), smallOrg(), 1);
    fm.onPrecharge(0, 100, 0, 1_us);
    const double base = fm.dose(0, 101).press[0];
    auto before = fm.snapshotDoses();
    fm.onPrecharge(0, 100, 2_us, 3_us);
    const double one_iter = fm.dose(0, 101).press[0] - base;
    fm.scaleDoseDelta(before, 9.0); // replay 9 more iterations
    EXPECT_NEAR(fm.dose(0, 101).press[0], base + 10.0 * one_iter, 1e-3);
}

TEST(Chip, FillReadAndFlipLatching)
{
    Chip chip(dieS8GbB(), smallOrg(), dram::benderTiming(), 1);
    chip.fillRow(0, 50, 0xAA, 0);
    EXPECT_EQ(chip.rowFill(0, 50), 0xAA);
    EXPECT_EQ(chip.readByte(0, 50, 17), 0xAA);
    EXPECT_TRUE(chip.storedFlipBits(0, 50).empty());

    // Force a huge press dose onto row 51 and materialize.
    chip.fillRow(0, 51, 0xFF, 0);
    chip.fault().onPrecharge(0, 50, 0, 2_s);
    auto flips = chip.materializeRow(0, 51, 2_s);
    ASSERT_FALSE(flips.empty());
    auto stored = chip.storedFlipBits(0, 51);
    EXPECT_EQ(stored.size(), flips.size());
    // Flipped bits read back inverted.
    const int bit = flips.front().bit;
    EXPECT_EQ((chip.readByte(0, 51, bit / 8) >> (bit % 8)) & 1, 0);
    // Dose is cleared by materialization.
    EXPECT_TRUE(chip.fault().dose(0, 51).empty());
}

TEST(Chip, ActRestoresOwnRowAndDisturbsNeighbors)
{
    Chip chip(dieS8GbB(), smallOrg(), dram::benderTiming(), 1);
    chip.act(0, 100, 0);
    EXPECT_FALSE(chip.fault().dose(0, 101).empty());
    EXPECT_TRUE(chip.fault().dose(0, 100).empty());
    auto interval = chip.pre(0, 36_ns);
    EXPECT_EQ(interval.row, 100);
    EXPECT_GT(chip.fault().dose(0, 101).press[0], 0.0);
}

TEST(Chip, RefreshStripeRestoresTrackedRows)
{
    dram::Organization org = smallOrg(); // 4096 rows / 8192 REFs
    Chip chip(dieS8GbB(), org, dram::benderTiming(), 1);
    chip.fillRow(0, 0, 0x55, 0);
    chip.fault().onActivate(0, 1, 0);
    ASSERT_FALSE(chip.fault().dose(0, 0).empty());
    chip.refresh(1_us); // stripe 0 covers row 0
    EXPECT_TRUE(chip.fault().dose(0, 0).empty());
}

TEST(Chip, EvalNoiseMakesNearThresholdFlipsStochastic)
{
    Chip chip(dieS8GbB(), smallOrg(), dram::benderTiming(), 1);
    chip.fault().setEvalNoiseSigma(0.0);
    chip.fillRow(0, 61, 0xFF, 0);
    // Find the exact threshold dose of row 61 via its candidates.
    const double min_theta =
        chip.fault().cells().rowCandidates(0, 61).minThetaP;
    // 99% of the threshold: never flips without noise.
    chip.fault().onPrecharge(0, 60, 0, Time(min_theta * 0.99 /
                                            (1.0 + 0.15)));
    EXPECT_TRUE(chip.materializeRow(0, 61, 1_ms).empty());
}

} // namespace
} // namespace rp::device
