/**
 * @file
 * Real-system demonstration tests (paper section 6): the RowPress
 * access pattern must induce bitflips on the TRR-protected system
 * model while the conventional RowHammer pattern (one cache-block read
 * per activation) must not.
 */

#include <gtest/gtest.h>

#include "sys/demo.h"

namespace rp::sys {
namespace {

DemoConfig
fastConfig()
{
    DemoConfig cfg;
    cfg.numVictims = 12;
    cfg.numIters = 24000;
    cfg.numAggrActs = 3;
    cfg.seed = 3;
    return cfg;
}

TEST(SysDemo, RowHammerPatternCannotFlip)
{
    DemoConfig cfg = fastConfig();
    cfg.numReads = 1;   // conventional RowHammer baseline
    cfg.numAggrActs = 2; // paper Fig. 23: zero flips at 2 activations
    auto res = runDemo(cfg);
    EXPECT_EQ(res.totalBitflips, 0u);
}

TEST(SysDemo, RowPressPatternFlips)
{
    DemoConfig cfg = fastConfig();
    cfg.numReads = 32;
    auto res = runDemo(cfg);
    EXPECT_GT(res.totalBitflips, 0u);
    EXPECT_GT(res.avgTAggOnNs, 400.0);
}

TEST(SysDemo, OverlongPatternDesynchronizesAndStopsFlipping)
{
    DemoConfig cfg = fastConfig();
    cfg.numReads = 64; // aggressor phase no longer fits a tREFI slot
    auto res = runDemo(cfg);
    EXPECT_EQ(res.totalBitflips, 0u);
}

TEST(SysDemo, MoreReadsKeepRowOpenLonger)
{
    DemoConfig a = fastConfig();
    a.numVictims = 2;
    a.numIters = 2000;
    a.numReads = 1;
    DemoConfig b = a;
    b.numReads = 32;
    auto ra = runDemo(a);
    auto rb = runDemo(b);
    EXPECT_GT(rb.avgTAggOnNs, 5.0 * ra.avgTAggOnNs);
}

TEST(SysDemo, LatencyProbeShowsRowOpenGap)
{
    auto probe = rowOpenLatencyProbe(5000);
    // Paper Fig. 24: ~30-cycle median gap between first and
    // subsequent cache-block accesses.
    const double gap = probe.medianFirstCycles - probe.medianRestCycles;
    EXPECT_GT(gap, 15.0);
    EXPECT_LT(gap, 60.0);
}

} // namespace
} // namespace rp::sys
