/**
 * @file
 * ECC analysis tests (section 7.1): word grouping, bucket counts, and
 * SECDED / Chipkill outcome classification, including parameterized
 * sweeps over constructed error patterns.
 */

#include <gtest/gtest.h>

#include "chr/ecc.h"

namespace rp::chr {
namespace {

VictimFlip
flipAt(int row, int bit)
{
    return {row, {bit, true, device::Mechanism::RowPress}};
}

TEST(Ecc, EmptyInput)
{
    auto stats = analyzeWordErrors({});
    EXPECT_EQ(stats.totalErrorWords, 0u);
    auto out = evaluateSecded({});
    EXPECT_EQ(out.corrected + out.detected + out.silent, 0u);
}

TEST(Ecc, GroupsByWordAndRow)
{
    // Two flips in word 0 of row 1, one in word 1 of row 1, one in
    // word 0 of row 2.
    std::vector<VictimFlip> flips = {flipAt(1, 3), flipAt(1, 60),
                                     flipAt(1, 64), flipAt(2, 5)};
    auto stats = analyzeWordErrors(flips);
    EXPECT_EQ(stats.totalErrorWords, 3u);
    EXPECT_EQ(stats.words1to2, 3u);
    EXPECT_EQ(stats.maxFlipsPerWord, 2u);
}

TEST(Ecc, BucketBoundaries)
{
    std::vector<VictimFlip> flips;
    for (int i = 0; i < 2; ++i)
        flips.push_back(flipAt(1, i));       // word 0: 2 flips
    for (int i = 0; i < 3; ++i)
        flips.push_back(flipAt(1, 64 + i));  // word 1: 3 flips
    for (int i = 0; i < 8; ++i)
        flips.push_back(flipAt(1, 128 + i)); // word 2: 8 flips
    for (int i = 0; i < 9; ++i)
        flips.push_back(flipAt(1, 192 + i)); // word 3: 9 flips
    auto stats = analyzeWordErrors(flips);
    EXPECT_EQ(stats.words1to2, 1u);
    EXPECT_EQ(stats.words3to8, 2u);
    EXPECT_EQ(stats.wordsOver8, 1u);
    EXPECT_EQ(stats.maxFlipsPerWord, 9u);
}

TEST(Ecc, DuplicateFlipsCountOnce)
{
    // Repeated observations of the same (row, bit) — e.g. one
    // location scanned across several attempts — describe one
    // erroneous cell and must not inflate the per-word flip count.
    std::vector<VictimFlip> flips = {flipAt(1, 3), flipAt(1, 3),
                                     flipAt(1, 3)};
    auto stats = analyzeWordErrors(flips);
    EXPECT_EQ(stats.totalErrorWords, 1u);
    EXPECT_EQ(stats.maxFlipsPerWord, 1u);
    auto secded = evaluateSecded(flips);
    EXPECT_EQ(secded.corrected, 1u);
    EXPECT_EQ(secded.silent, 0u);

    // Two distinct bits observed twice each: still a 2-flip word.
    std::vector<VictimFlip> two = {flipAt(2, 0), flipAt(2, 9),
                                   flipAt(2, 9), flipAt(2, 0)};
    EXPECT_EQ(analyzeWordErrors(two).maxFlipsPerWord, 2u);
    EXPECT_EQ(evaluateSecded(two).detected, 1u);
    EXPECT_EQ(evaluateChipkill(two, 8).detected, 1u);
}

TEST(Ecc, WordKeyPackingNearBoundary)
{
    // Regression for the (row << 20) | word_index packing: with word
    // index 2^20 (bit 64 * 2^20) the old key for (row 2, word 2^20)
    // collided with (row 3, word 0) and merged unrelated words.
    const int boundary_bit = 64 * (1 << 20);
    std::vector<VictimFlip> flips = {flipAt(2, boundary_bit),
                                     flipAt(2, boundary_bit + 1),
                                     flipAt(3, 0)};
    auto stats = analyzeWordErrors(flips);
    EXPECT_EQ(stats.totalErrorWords, 2u);
    EXPECT_EQ(stats.words1to2, 2u);
    EXPECT_EQ(stats.maxFlipsPerWord, 2u);
    auto secded = evaluateSecded(flips);
    EXPECT_EQ(secded.corrected, 1u); // row 3's single flip
    EXPECT_EQ(secded.detected, 1u);  // row 2's double flip
    EXPECT_EQ(secded.silent, 0u);    // the collision made a 3-flip word

    // VictimFlip::id() uses the same packing; the same two flips must
    // not alias either.
    EXPECT_NE(flipAt(2, boundary_bit).id(), flipAt(3, 0).id());
}

TEST(Ecc, StatsMerge)
{
    WordErrorStats a, b;
    a.words1to2 = 1;
    a.maxFlipsPerWord = 3;
    a.totalErrorWords = 1;
    b.words3to8 = 2;
    b.maxFlipsPerWord = 7;
    b.totalErrorWords = 2;
    a.merge(b);
    EXPECT_EQ(a.words1to2, 1u);
    EXPECT_EQ(a.words3to8, 2u);
    EXPECT_EQ(a.maxFlipsPerWord, 7u);
    EXPECT_EQ(a.totalErrorWords, 3u);
}

/** SECDED outcome as a function of flips-per-word. */
class SecdedOutcome : public ::testing::TestWithParam<int>
{
};

TEST_P(SecdedOutcome, ClassifiesByCount)
{
    const int n = GetParam();
    std::vector<VictimFlip> flips;
    for (int i = 0; i < n; ++i)
        flips.push_back(flipAt(4, i));
    auto out = evaluateSecded(flips);
    EXPECT_EQ(out.corrected, n == 1 ? 1u : 0u);
    EXPECT_EQ(out.detected, n == 2 ? 1u : 0u);
    EXPECT_EQ(out.silent, n >= 3 ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(Counts, SecdedOutcome,
                         ::testing::Values(1, 2, 3, 8, 25));

TEST(Ecc, ChipkillCorrectsOneSymbol)
{
    // 8 flips all inside one 8-bit symbol: corrected by Chipkill-x8,
    // silent under SECDED.
    std::vector<VictimFlip> flips;
    for (int i = 0; i < 8; ++i)
        flips.push_back(flipAt(1, 8 + i));
    auto ck = evaluateChipkill(flips, 8);
    EXPECT_EQ(ck.corrected, 1u);
    EXPECT_EQ(evaluateSecded(flips).silent, 1u);
}

TEST(Ecc, ChipkillDetectsTwoSymbolsAndMissesThree)
{
    std::vector<VictimFlip> two = {flipAt(1, 0), flipAt(1, 9)};
    auto ck2 = evaluateChipkill(two, 8);
    EXPECT_EQ(ck2.detected, 1u);

    std::vector<VictimFlip> three = {flipAt(1, 0), flipAt(1, 9),
                                     flipAt(1, 17)};
    auto ck3 = evaluateChipkill(three, 8);
    EXPECT_EQ(ck3.silent, 1u);
}

/** Symbol width sweep (x4 / x8 / x16 devices, paper footnote 24). */
class ChipkillWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(ChipkillWidth, WidthDeterminesSymbolCount)
{
    const int width = GetParam();
    // 25 flips spread across the word: at least ceil(25/width)
    // symbols are erroneous -> always >2 symbols -> silent.
    std::vector<VictimFlip> flips;
    for (int i = 0; i < 25; ++i)
        flips.push_back(flipAt(1, (i * 2) % 64));
    auto out = evaluateChipkill(flips, width);
    EXPECT_EQ(out.silent, 1u);
}

INSTANTIATE_TEST_SUITE_P(Widths, ChipkillWidth,
                         ::testing::Values(4, 8, 16));

} // namespace
} // namespace rp::chr
