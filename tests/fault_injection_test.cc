/**
 * @file
 * Chaos suite: the deterministic fault-injection harness driving the
 * service/protocol robustness stack.  Every scenario arms
 * core::FaultInjector (programmatically or through the RP_FAULT_SEED
 * / RP_FAULT_POINTS environment grammar) and asserts the documented
 * degradation: a worker exception fails its job without wedging the
 * queue; a sink failure degrades only its job; a socket write fault
 * drops one session while its in-flight jobs keep running; a
 * deadline ends a long run as deadline_exceeded with a terminated
 * event stream; a transient failure retried to success is
 * byte-identical to a no-fault run; full queues and load-shed mode
 * reject with machine-readable reasons; SIGTERM drains with the
 * documented exit codes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "api/context.h"
#include "api/protocol.h"
#include "api/service.h"
#include "core/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#define RP_TEST_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace rp::api {
namespace {

namespace fs = std::filesystem;
using core::FaultInjector;
using core::FaultSpec;

/** Every test leaves the process-wide injector disarmed. */
struct DisarmGuard
{
    ~DisarmGuard() { FaultInjector::instance().disarm(); }
};

FaultSpec
spec(const std::string &point, FaultSpec::Kind kind,
     bool transient = false, int count = -1, int skip = 0)
{
    FaultSpec s;
    s.point = point;
    s.kind = kind;
    s.transient = transient;
    s.count = count;
    s.skip = skip;
    return s;
}

/** Release-gated experiment for in-flight/backpressure scenarios. */
struct Gate
{
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(m);
        entered = false;
        release = false;
    }

    void
    waitEntered()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [this] { return entered; });
    }

    void
    open()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            release = true;
        }
        cv.notify_all();
    }
};
Gate g_gate;

struct RegisterDummies
{
    RegisterDummies()
    {
        auto &registry = ExperimentRegistry::instance();
        // Deterministic artifact writer: per-task seeds are a pure
        // function of (root seed, index), and map() returns results
        // in index order, so the rendered bytes are independent of
        // thread count — the byte-identity scenarios rely on it.
        registry.add({{"zzflt_artifact", "Deterministic artifacts",
                       "none", "test"},
                      nullptr, [](ExperimentContext &ctx) {
                          const auto vals =
                              ctx.engine().map<std::uint64_t>(
                                  8, [](const core::TaskContext &t) {
                                      return t.seed;
                                  });
                          Dataset d("flt artifact");
                          d.header({"i", "seed"});
                          for (std::size_t i = 0; i < vals.size(); ++i)
                              d.row({std::to_string(i),
                                     std::to_string(vals[i])});
                          ctx.emit(d);
                          ctx.note("flt note\n");
                      }});
        // Long run with frequent task boundaries: deadlines and
        // cancellation land at one of them within ~20 ms.
        registry.add({{"zzflt_slow", "Slow many-task run", "none",
                       "test"},
                      nullptr, [](ExperimentContext &ctx) {
                          ctx.engine().map<int>(
                              60, [](const core::TaskContext &) {
                                  std::this_thread::sleep_for(
                                      std::chrono::milliseconds(20));
                                  return 0;
                              });
                          Dataset d("slow");
                          d.header({"x"});
                          d.row({"1"});
                          ctx.emit(d);
                      }});
        registry.add({{"zzflt_gate", "Blocks until released", "none",
                       "test"},
                      nullptr, [](ExperimentContext &ctx) {
                          ctx.engine().map<int>(
                              1, [](const core::TaskContext &) {
                                  std::unique_lock<std::mutex> lock(
                                      g_gate.m);
                                  g_gate.entered = true;
                                  g_gate.cv.notify_all();
                                  g_gate.cv.wait(lock, [] {
                                      return g_gate.release;
                                  });
                                  return 0;
                              });
                      }});
    }
};
const RegisterDummies register_dummies;

fs::path
tempDir(const std::string &leaf)
{
    const fs::path dir = fs::path(::testing::TempDir()) / leaf;
    fs::remove_all(dir);
    return dir;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

JobRequest
artifactRequest(const fs::path &out, const std::string &threads = "1")
{
    JobRequest req;
    req.experiment = "zzflt_artifact";
    req.overlay = {{"threads", threads}, {"seed", "7"}};
    req.outDir = out;
    return req;
}

// ---- injector unit behavior ------------------------------------------

TEST(FaultInjector, RejectsUnknownPointsAndBadSpecs)
{
    DisarmGuard guard;
    auto &fi = FaultInjector::instance();
    EXPECT_THROW(
        fi.arm(1, {spec("no.such.point", FaultSpec::Kind::Throw)}),
        std::invalid_argument);
    FaultSpec bad = spec("sink.render", FaultSpec::Kind::Throw);
    bad.probability = 1.5;
    EXPECT_THROW(fi.arm(1, {bad}), std::invalid_argument);
    FaultSpec bad_errno = spec("sink.render", FaultSpec::Kind::Errno);
    bad_errno.errnoValue = 0;
    EXPECT_THROW(fi.arm(1, {bad_errno}), std::invalid_argument);
    EXPECT_FALSE(fi.armed());
}

TEST(FaultInjector, EnvGrammarArmsSkipCountAndErrno)
{
    DisarmGuard guard;
    auto &fi = FaultInjector::instance();
    ::setenv("RP_FAULT_SEED", "42", 1);
    ::setenv("RP_FAULT_POINTS",
             " sink.render = transient x2 @1 , "
             "protocol.socket.write = errno:EPIPE ",
             1);
    fi.armFromEnv();
    ::unsetenv("RP_FAULT_POINTS");
    ::unsetenv("RP_FAULT_SEED");
    ASSERT_TRUE(fi.armed());

    // skip=1: first hit passes, then two transient throws, then the
    // count is exhausted and the point goes quiet.
    EXPECT_EQ(core::faultPoint("sink.render"), 0);
    EXPECT_THROW(core::faultPoint("sink.render"),
                 core::TransientError);
    EXPECT_THROW(core::faultPoint("sink.render"),
                 core::TransientError);
    EXPECT_EQ(core::faultPoint("sink.render"), 0);

    // Errno faults return the value instead of throwing.
    EXPECT_EQ(core::faultPoint("protocol.socket.write"), EPIPE);

    const auto stats = fi.stats();
    bool checked = false;
    for (const auto &p : stats) {
        if (p.point == "sink.render") {
            EXPECT_EQ(p.hits, 4u);
            EXPECT_EQ(p.fires, 2u);
            checked = true;
        }
    }
    EXPECT_TRUE(checked);
}

TEST(FaultInjector, EnvGrammarRejectsMalformedInput)
{
    DisarmGuard guard;
    auto &fi = FaultInjector::instance();
    for (const char *bad :
         {"sink.render", "sink.render=frobnicate",
          "zz.unknown=throw", "sink.render=errno:EWHAT",
          "sink.render=delay:abc", "sink.render=throw~nope"}) {
        ::setenv("RP_FAULT_POINTS", bad, 1);
        EXPECT_THROW(fi.armFromEnv(), std::invalid_argument) << bad;
    }
    ::unsetenv("RP_FAULT_POINTS");
    EXPECT_FALSE(fi.armed());
}

TEST(FaultInjector, ProbabilityGateReplaysUnderFixedSeed)
{
    DisarmGuard guard;
    auto &fi = FaultInjector::instance();
    FaultSpec p = spec("sink.render", FaultSpec::Kind::Errno);
    p.errnoValue = EIO;
    p.probability = 0.5;

    auto pattern = [&](std::uint64_t seed) {
        fi.disarm();
        fi.arm(seed, {p});
        std::string bits;
        for (int i = 0; i < 64; ++i)
            bits += core::faultPoint("sink.render") ? '1' : '0';
        return bits;
    };

    const std::string a = pattern(1234);
    const std::string b = pattern(1234);
    EXPECT_EQ(a, b); // same seed: identical fault schedule
    EXPECT_NE(a.find('1'), std::string::npos);
    EXPECT_NE(a.find('0'), std::string::npos);
    EXPECT_NE(a, pattern(99)); // different seed: different schedule
}

// ---- service chaos ---------------------------------------------------

TEST(FaultService, WorkerExceptionFailsJobWithoutWedgingQueue)
{
    DisarmGuard guard;
    const fs::path out = tempDir("rp_flt_worker");
    FaultInjector::instance().arm(
        1, {spec("core.engine.task", FaultSpec::Kind::Throw,
                 /*transient=*/false, /*count=*/1)});

    Service service(Service::Options{/*workers=*/1});
    const auto first = service.submit(artifactRequest(out / "a"));
    const auto second = service.submit(artifactRequest(out / "b"));

    const JobStatus st1 = service.wait(first);
    EXPECT_EQ(st1.state, JobState::Failed);
    EXPECT_NE(st1.error.find("core.engine.task"), std::string::npos);

    // The queue is not stuck: the next job runs to completion.
    const JobStatus st2 = service.wait(second);
    EXPECT_EQ(st2.state, JobState::Finished);
    EXPECT_TRUE(
        fs::exists(out / "b" / "zzflt_artifact" / "result.json"));
}

TEST(FaultService, SinkFailureDegradesOnlyItsJob)
{
    DisarmGuard guard;
    const fs::path out = tempDir("rp_flt_sink");
    // First rendered (non-Queued) sink delivery throws; with one
    // scheduler worker the hit schedule is deterministic, so the
    // fault lands in job 1's Started delivery.
    FaultInjector::instance().arm(
        1, {spec("sink.render", FaultSpec::Kind::Throw,
                 /*transient=*/false, /*count=*/1)});

    Service service(Service::Options{/*workers=*/1});
    const auto first = service.submit(artifactRequest(out / "a"));
    const auto second = service.submit(artifactRequest(out / "b"));

    const JobStatus st1 = service.wait(first);
    EXPECT_EQ(st1.state, JobState::Failed);
    EXPECT_NE(st1.error.find("sink.render"), std::string::npos);

    const JobStatus st2 = service.wait(second);
    EXPECT_EQ(st2.state, JobState::Finished);
    EXPECT_TRUE(
        fs::exists(out / "b" / "zzflt_artifact" / "result.json"));
}

TEST(FaultService, DeadlineExceededEndsLongRunAndItsEventStream)
{
    DisarmGuard guard;
    Service service(Service::Options{/*workers=*/1});

    std::mutex m;
    std::vector<JobEvent> events;
    service.addObserver([&](const JobEvent &event) {
        std::lock_guard<std::mutex> lock(m);
        events.push_back(event);
    });

    JobRequest req;
    req.experiment = "zzflt_slow";
    req.overlay = {{"threads", "1"}};
    req.outDir = tempDir("rp_flt_deadline");
    req.deadlineMs = 150; // the run takes ~1.2 s unconstrained
    const auto id = service.submit(req);

    const JobStatus st = service.wait(id);
    EXPECT_EQ(st.state, JobState::DeadlineExceeded);
    EXPECT_LT(st.elapsedMs, 5000.0);

    std::lock_guard<std::mutex> lock(m);
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.back().type, JobEventType::Finished);
    EXPECT_EQ(events.back().state, JobState::DeadlineExceeded);
}

TEST(FaultService, DeadlineExpiresQueuedJobBeforeItRuns)
{
    DisarmGuard guard;
    g_gate.reset();
    Service service(Service::Options{/*workers=*/1});

    JobRequest blocker;
    blocker.experiment = "zzflt_gate";
    blocker.overlay = {{"threads", "1"}};
    blocker.outDir = tempDir("rp_flt_qdl_gate");
    const auto gate_id = service.submit(blocker);
    g_gate.waitEntered();

    JobRequest queued = artifactRequest(tempDir("rp_flt_qdl"));
    queued.deadlineMs = 100;
    const auto id = service.submit(queued);

    const JobStatus st = service.wait(id);
    EXPECT_EQ(st.state, JobState::DeadlineExceeded);
    EXPECT_EQ(st.attempts, 0); // never ran

    g_gate.open();
    EXPECT_EQ(service.wait(gate_id).state, JobState::Finished);
}

TEST(FaultService, TransientRetrySucceedsByteIdenticalToNoFaultRun)
{
    DisarmGuard guard;
    for (const std::string threads : {"1", "4"}) {
        FaultInjector::instance().disarm();
        const fs::path clean =
            tempDir("rp_flt_retry_clean_t" + threads);
        const fs::path faulted =
            tempDir("rp_flt_retry_faulted_t" + threads);

        Service service(Service::Options{/*workers=*/1});
        EXPECT_EQ(
            service.wait(service.submit(artifactRequest(
                             clean, threads)))
                .state,
            JobState::Finished);

        // One transient mid-run fault (attempt 1's first engine
        // task), then clean: the retry must succeed and rewrite the
        // same bytes.
        FaultInjector::instance().arm(
            7, {spec("core.engine.task", FaultSpec::Kind::Throw,
                     /*transient=*/true, /*count=*/1)});

        std::mutex m;
        std::vector<JobEvent> events;
        const auto observer =
            service.addObserver([&](const JobEvent &event) {
                std::lock_guard<std::mutex> lock(m);
                events.push_back(event);
            });

        JobRequest req = artifactRequest(faulted, threads);
        req.retry.maxAttempts = 3;
        req.retry.backoffBaseMs = 1;
        const JobStatus st = service.wait(service.submit(req));
        service.removeObserver(observer);

        EXPECT_EQ(st.state, JobState::Finished) << st.error;
        EXPECT_EQ(st.attempts, 2);

        bool saw_retrying = false;
        {
            std::lock_guard<std::mutex> lock(m);
            for (const JobEvent &event : events) {
                if (event.type == JobEventType::Retrying) {
                    saw_retrying = true;
                    EXPECT_EQ(event.attempt, 1);
                    EXPECT_GE(event.backoffMs, 1);
                }
            }
        }
        EXPECT_TRUE(saw_retrying);

        for (const char *leaf : {"flt_artifact.csv", "result.json"}) {
            const fs::path a = clean / "zzflt_artifact" / leaf;
            const fs::path b = faulted / "zzflt_artifact" / leaf;
            ASSERT_TRUE(fs::exists(a)) << a;
            ASSERT_TRUE(fs::exists(b)) << b;
            EXPECT_EQ(slurp(a), slurp(b))
                << leaf << " differs at threads=" << threads;
        }
    }
}

TEST(FaultService, PreDispatchTransientRetriesButHonorsAttemptCap)
{
    DisarmGuard guard;
    // Every attempt fails transiently: the job retries up to the cap
    // and then reports the last failure.
    FaultInjector::instance().arm(
        1, {spec("service.worker.pre_dispatch",
                 FaultSpec::Kind::Throw, /*transient=*/true)});

    Service service(Service::Options{/*workers=*/1});
    JobRequest req = artifactRequest(tempDir("rp_flt_cap"));
    req.retry.maxAttempts = 3;
    req.retry.backoffBaseMs = 1;
    const JobStatus st = service.wait(service.submit(req));
    EXPECT_EQ(st.state, JobState::Failed);
    EXPECT_EQ(st.attempts, 3);
    EXPECT_NE(st.error.find("service.worker.pre_dispatch"),
              std::string::npos);

    // Non-transient failures never retry.
    FaultInjector::instance().disarm();
    FaultInjector::instance().arm(
        1, {spec("service.worker.pre_dispatch",
                 FaultSpec::Kind::Throw, /*transient=*/false)});
    const JobStatus once = service.wait(service.submit(req));
    EXPECT_EQ(once.state, JobState::Failed);
    EXPECT_EQ(once.attempts, 1);
}

TEST(FaultService, QueueFullAndLoadShedRejectWithReasons)
{
    DisarmGuard guard;
    g_gate.reset();
    Service service(Service::Options{/*workers=*/1,
                                     /*max_queue=*/2});

    JobRequest blocker;
    blocker.experiment = "zzflt_gate";
    blocker.overlay = {{"threads", "1"}};
    blocker.outDir = tempDir("rp_flt_queue_gate");
    const auto gate_id = service.submit(blocker);
    g_gate.waitEntered(); // worker busy; the queue is empty

    const fs::path out = tempDir("rp_flt_queue");
    const auto q1 = service.submit(artifactRequest(out / "1"));
    const auto q2 = service.submit(artifactRequest(out / "2"));

    try {
        service.submit(artifactRequest(out / "3"));
        FAIL() << "expected queue_full";
    } catch (const AdmissionError &e) {
        EXPECT_EQ(e.reason(), "queue_full");
    }

    service.setLoadShed(true);
    EXPECT_TRUE(service.loadShedding());
    try {
        service.submit(artifactRequest(out / "4"));
        FAIL() << "expected load_shed";
    } catch (const AdmissionError &e) {
        EXPECT_EQ(e.reason(), "load_shed");
    }
    service.setLoadShed(false);

    g_gate.open();
    EXPECT_EQ(service.wait(gate_id).state, JobState::Finished);
    EXPECT_EQ(service.wait(q1).state, JobState::Finished);
    EXPECT_EQ(service.wait(q2).state, JobState::Finished);
}

TEST(FaultService, WaitForTimesOutThenCompletes)
{
    DisarmGuard guard;
    g_gate.reset();
    Service service(Service::Options{/*workers=*/1});

    JobRequest blocker;
    blocker.experiment = "zzflt_gate";
    blocker.overlay = {{"threads", "1"}};
    blocker.outDir = tempDir("rp_flt_waitfor");
    const auto id = service.submit(blocker);
    g_gate.waitEntered();

    JobStatus snapshot;
    EXPECT_EQ(service.waitFor(id, 50, snapshot),
              Service::WaitOutcome::TimedOut);
    EXPECT_EQ(snapshot.state, JobState::Running);

    g_gate.open();
    EXPECT_EQ(service.waitFor(id, 10000, snapshot),
              Service::WaitOutcome::Done);
    EXPECT_EQ(snapshot.state, JobState::Finished);
}

#if RP_TEST_HAVE_SOCKETS

// ---- TCP supervision chaos -------------------------------------------

int
freePort()
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, (const sockaddr *)&addr, sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, (sockaddr *)&addr, &len), 0);
    const int port = ntohs(addr.sin_port);
    ::close(fd);
    return port;
}

/** Line-oriented NDJSON test client. */
class TcpClient
{
  public:
    bool
    connectTo(int port)
    {
        for (int i = 0; i < 100; ++i) {
            fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port = htons(std::uint16_t(port));
            if (::connect(fd_, (const sockaddr *)&addr,
                          sizeof(addr)) == 0)
                return true;
            ::close(fd_);
            fd_ = -1;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        return false;
    }

    void
    sendLine(const std::string &line)
    {
        const std::string framed = line + "\n";
#if defined(MSG_NOSIGNAL)
        (void)::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL);
#else
        (void)::write(fd_, framed.data(), framed.size());
#endif
    }

    /** False on EOF or timeout. */
    bool
    readLine(std::string &out, int timeout_ms = 20000)
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                out = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            pollfd pfd{};
            pfd.fd = fd_;
            pfd.events = POLLIN;
            if (::poll(&pfd, 1, timeout_ms) <= 0)
                return false;
            char tmp[4096];
            const ssize_t n = ::read(fd_, tmp, sizeof(tmp));
            if (n <= 0)
                return false;
            buf_.append(tmp, std::size_t(n));
        }
    }

    /** Next non-event line (responses interleave with the stream). */
    bool
    readResponse(JsonValue &out, int timeout_ms = 20000)
    {
        std::string line;
        while (readLine(line, timeout_ms)) {
            JsonValue v = parseJson(line);
            if (!v.find("event")) {
                out = std::move(v);
                return true;
            }
        }
        return false;
    }

    void
    closeNow()
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
    }

    ~TcpClient() { closeNow(); }

    int fd_ = -1;
    std::string buf_;
};

struct ServerHandle
{
    std::thread thread;
    std::shared_ptr<int> exitCode =
        std::make_shared<int>(-1); // stable across handle moves

    int
    join()
    {
        thread.join();
        return *exitCode;
    }
};

ServerHandle
startServer(Service &service, const ServeOptions &opts,
            std::ostream &log)
{
    ServerHandle handle;
    auto code = handle.exitCode;
    handle.thread = std::thread([&service, opts, &log, code] {
        *code = serveTcp(service, opts, log);
    });
    return handle;
}

std::string
submitLine(const std::string &experiment, const fs::path &out,
           const std::string &extra = "")
{
    return "{\"op\":\"submit\",\"experiment\":\"" + experiment +
           "\",\"config\":{\"threads\":\"1\"},\"out\":\"" +
           out.string() + "\"" + extra + "}";
}

TEST(FaultTcp, ConcurrentSessionsSeeOnlyTheirOwnEvents)
{
    DisarmGuard guard;
    Service service(Service::Options{/*workers=*/2,
                                     /*max_queue=*/16});
    ServeOptions opts;
    opts.port = freePort();
    std::ostringstream log;
    ServerHandle server = startServer(service, opts, log);

    TcpClient a, b;
    ASSERT_TRUE(a.connectTo(opts.port));
    ASSERT_TRUE(b.connectTo(opts.port));

    const fs::path out = tempDir("rp_flt_tcp_iso");
    a.sendLine(submitLine("zzflt_artifact", out / "a"));
    b.sendLine(submitLine("zzflt_artifact", out / "b"));

    JsonValue ra, rb;
    ASSERT_TRUE(a.readResponse(ra));
    ASSERT_TRUE(b.readResponse(rb));
    ASSERT_TRUE(ra.find("ok")->boolean) << ra.find("error")->text;
    ASSERT_TRUE(rb.find("ok")->boolean) << rb.find("error")->text;
    const std::string job_a = ra.find("job")->text;
    const std::string job_b = rb.find("job")->text;
    EXPECT_NE(job_a, job_b);

    // Drain each session's event stream to its job's finished line;
    // every event a session sees must belong to its own job.
    auto drainEvents = [](TcpClient &client, const std::string &job) {
        std::string line;
        bool finished = false;
        while (!finished && client.readLine(line)) {
            JsonValue v = parseJson(line);
            const JsonValue *event = v.find("event");
            if (!event)
                continue;
            EXPECT_EQ(v.find("job")->text, job)
                << "cross-session event leak: " << line;
            finished = event->text == "finished";
        }
        EXPECT_TRUE(finished);
    };
    drainEvents(a, job_a);
    drainEvents(b, job_b);

    // wait on the other session's job id still works (status is
    // global; only the *stream* is scoped).
    b.sendLine("{\"op\":\"wait\",\"job\":" + job_a +
               ",\"timeout_ms\":10000}");
    JsonValue wb;
    ASSERT_TRUE(b.readResponse(wb));
    EXPECT_TRUE(wb.find("ok")->boolean);
    EXPECT_EQ(wb.find("outcome")->text, "done");
    EXPECT_EQ(wb.find("state")->text, "finished");

    a.sendLine("{\"op\":\"shutdown\"}");
    EXPECT_EQ(server.join(), 0);
}

TEST(FaultTcp, SessionInflightCapRejectsWithSessionLimit)
{
    DisarmGuard guard;
    g_gate.reset();
    Service service(Service::Options{/*workers=*/1,
                                     /*max_queue=*/16});
    ServeOptions opts;
    opts.port = freePort();
    opts.sessionMaxInflight = 1;
    std::ostringstream log;
    ServerHandle server = startServer(service, opts, log);

    TcpClient client;
    ASSERT_TRUE(client.connectTo(opts.port));
    const fs::path out = tempDir("rp_flt_tcp_cap");
    client.sendLine(submitLine("zzflt_gate", out / "gate"));
    JsonValue first;
    ASSERT_TRUE(client.readResponse(first));
    ASSERT_TRUE(first.find("ok")->boolean);
    g_gate.waitEntered();

    client.sendLine(submitLine("zzflt_artifact", out / "rejected"));
    JsonValue rejected;
    ASSERT_TRUE(client.readResponse(rejected));
    EXPECT_FALSE(rejected.find("ok")->boolean);
    ASSERT_NE(rejected.find("reason"), nullptr);
    EXPECT_EQ(rejected.find("reason")->text, "session_limit");

    g_gate.open();
    client.sendLine("{\"op\":\"wait\",\"job\":" +
                    first.find("job")->text +
                    ",\"timeout_ms\":10000}");
    JsonValue waited;
    ASSERT_TRUE(client.readResponse(waited));
    EXPECT_EQ(waited.find("outcome")->text, "done");

    client.sendLine("{\"op\":\"shutdown\"}");
    EXPECT_EQ(server.join(), 0);
}

TEST(FaultTcp, SocketWriteFaultDropsSessionButNotInFlightJobs)
{
    DisarmGuard guard;
    g_gate.reset();
    Service service(Service::Options{/*workers=*/1,
                                     /*max_queue=*/16});
    ServeOptions opts;
    opts.port = freePort();
    std::ostringstream log;
    ServerHandle server = startServer(service, opts, log);

    TcpClient victim;
    ASSERT_TRUE(victim.connectTo(opts.port));
    const fs::path out = tempDir("rp_flt_tcp_epipe");
    victim.sendLine(submitLine("zzflt_gate", out / "gate"));
    JsonValue submitted;
    ASSERT_TRUE(victim.readResponse(submitted));
    ASSERT_TRUE(submitted.find("ok")->boolean);
    const std::string job = submitted.find("job")->text;
    g_gate.waitEntered(); // job is running on its worker

    // Every subsequent socket write on the victim's session fails
    // with EPIPE: its next response cannot be delivered, so the
    // session winds down — without touching the in-flight job.
    FaultSpec epipe =
        spec("protocol.socket.write", FaultSpec::Kind::Errno);
    epipe.errnoValue = EPIPE;
    FaultInjector::instance().arm(1, {epipe});

    victim.sendLine("{\"op\":\"status\"}");
    // Event lines written before the fault was armed may still drain
    // out of the socket buffer; the status *response* cannot (its
    // write faults), so the stream must end without one.
    std::string line;
    bool saw_response = false;
    for (int i = 0; i < 50 && victim.readLine(line, 3000); ++i) {
        if (parseJson(line).find("ok"))
            saw_response = true;
    }
    EXPECT_FALSE(saw_response);
    victim.closeNow();

    FaultInjector::instance().disarm();
    g_gate.open();

    // The job survived its session: a fresh session can await it.
    TcpClient watcher;
    ASSERT_TRUE(watcher.connectTo(opts.port));
    watcher.sendLine("{\"op\":\"wait\",\"job\":" + job +
                     ",\"timeout_ms\":10000}");
    JsonValue waited;
    ASSERT_TRUE(watcher.readResponse(waited));
    EXPECT_TRUE(waited.find("ok")->boolean);
    EXPECT_EQ(waited.find("outcome")->text, "done");
    EXPECT_EQ(waited.find("state")->text, "finished");

    watcher.sendLine("{\"op\":\"shutdown\"}");
    EXPECT_EQ(server.join(), 0);
}

TEST(FaultTcp, AcceptRetriesAfterInjectedFdExhaustion)
{
    DisarmGuard guard;
    Service service(Service::Options{/*workers=*/1});
    ServeOptions opts;
    opts.port = freePort();
    std::ostringstream log;

    // The first two accept attempts see EMFILE; the loop must back
    // off and still accept the pending connection afterwards.
    FaultSpec emfile = spec("protocol.accept", FaultSpec::Kind::Errno,
                            /*transient=*/false, /*count=*/2);
    emfile.errnoValue = EMFILE;
    FaultInjector::instance().arm(1, {emfile});

    ServerHandle server = startServer(service, opts, log);
    TcpClient client;
    ASSERT_TRUE(client.connectTo(opts.port));
    client.sendLine("{\"op\":\"list\",\"glob\":\"zzflt_*\"}");
    JsonValue listing;
    ASSERT_TRUE(client.readResponse(listing));
    EXPECT_TRUE(listing.find("ok")->boolean);

    EXPECT_NE(log.str().find("out of descriptors"),
              std::string::npos);

    client.sendLine("{\"op\":\"shutdown\"}");
    EXPECT_EQ(server.join(), 0);
}

TEST(FaultTcp, IdleSessionTimesOutWithoutKillingItsJobs)
{
    DisarmGuard guard;
    g_gate.reset();
    Service service(Service::Options{/*workers=*/1});
    ServeOptions opts;
    opts.port = freePort();
    opts.idleTimeoutMs = 200;
    std::ostringstream log;
    ServerHandle server = startServer(service, opts, log);

    TcpClient idler;
    ASSERT_TRUE(idler.connectTo(opts.port));
    const fs::path out = tempDir("rp_flt_tcp_idle");
    idler.sendLine(submitLine("zzflt_gate", out / "gate"));
    JsonValue submitted;
    ASSERT_TRUE(idler.readResponse(submitted));
    const std::string job = submitted.find("job")->text;
    g_gate.waitEntered();

    // Silent past the idle budget: the server disconnects us.
    std::string line;
    bool eof = false;
    for (int i = 0; i < 50 && !eof; ++i)
        eof = !idler.readLine(line, 200);
    EXPECT_TRUE(eof);
    idler.closeNow();

    g_gate.open();
    TcpClient watcher;
    ASSERT_TRUE(watcher.connectTo(opts.port));
    watcher.sendLine("{\"op\":\"wait\",\"job\":" + job +
                     ",\"timeout_ms\":10000}");
    JsonValue waited;
    ASSERT_TRUE(watcher.readResponse(waited));
    EXPECT_EQ(waited.find("state")->text, "finished");

    watcher.sendLine("{\"op\":\"shutdown\"}");
    EXPECT_EQ(server.join(), 0);
}

TEST(FaultTcp, SigtermDrainsIdleServerWithExitCode3)
{
    DisarmGuard guard;
    Service service(Service::Options{/*workers=*/1});
    ServeOptions opts;
    opts.port = freePort();
    opts.graceMs = 2000;
    std::ostringstream log;
    ServerHandle server = startServer(service, opts, log);

    // Let the accept loop install its handlers and start polling.
    TcpClient probe;
    ASSERT_TRUE(probe.connectTo(opts.port));
    probe.closeNow();

    ::raise(SIGTERM);
    EXPECT_EQ(server.join(), 3); // drained within grace
}

TEST(FaultTcp, SigtermGraceExpiryCancelsAndExits4)
{
    DisarmGuard guard;
    Service service(Service::Options{/*workers=*/1});
    ServeOptions opts;
    opts.port = freePort();
    opts.graceMs = 100; // far less than the slow job needs
    std::ostringstream log;
    ServerHandle server = startServer(service, opts, log);

    TcpClient client;
    ASSERT_TRUE(client.connectTo(opts.port));
    client.sendLine(
        submitLine("zzflt_slow", tempDir("rp_flt_tcp_term")));
    JsonValue submitted;
    ASSERT_TRUE(client.readResponse(submitted));
    ASSERT_TRUE(submitted.find("ok")->boolean);

    // Give the scheduler a beat to start the job, then signal.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ::raise(SIGTERM);
    EXPECT_EQ(server.join(), 4); // grace expired: cancelled

    // The slow job was cancelled, not completed.
    bool saw_terminal = false;
    for (const JobStatus &st : service.jobs()) {
        if (st.experiment == "zzflt_slow") {
            saw_terminal = st.state == JobState::Cancelled;
        }
    }
    EXPECT_TRUE(saw_terminal);
}

#endif // RP_TEST_HAVE_SOCKETS

} // namespace
} // namespace rp::api
