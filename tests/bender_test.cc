/**
 * @file
 * Tests for the DRAM-Bender-style test platform: program building,
 * exact tAggON timing, the 60 ms budget arithmetic, and - critically -
 * the equivalence of fast-forwarded loops with concrete execution.
 */

#include <gtest/gtest.h>

#include "bender/platform.h"
#include "chr/acmin.h"
#include "chr/patterns.h"

namespace rp::bender {
namespace {

using namespace rp::literals;

PlatformConfig
smallConfig(std::uint64_t ff_threshold = 8)
{
    PlatformConfig cfg;
    cfg.die = device::dieS8GbB();
    cfg.org.rows = 4096;
    cfg.fastForwardThreshold = ff_threshold;
    return cfg;
}

TEST(Program, BuilderAndCommandCount)
{
    Program body;
    body.act(1, 10).wait(36_ns).pre(1);
    EXPECT_EQ(body.commandCount(), 2u);

    Program program;
    program.loop(1000, body);
    program.rd(1, 3);
    EXPECT_EQ(program.commandCount(), 2001u);

    Program empty;
    program.loop(5, empty); // no-op
    EXPECT_EQ(program.commandCount(), 2001u);
}

TEST(Program, WaitIgnoresNonPositiveDurations)
{
    Program p;
    p.wait(0).wait(-5);
    EXPECT_TRUE(p.empty());
}

TEST(Platform, ExactTAggOnTiming)
{
    TestPlatform platform(smallConfig());
    Program p;
    p.act(1, 100).wait(7800_ns).pre(1);
    platform.run(p);
    // The press dose on the neighbor equals tAggON minus the onset.
    const auto &dose = platform.chip().fault().dose(1, 101);
    const Time onset =
        platform.chip().fault().cells().params().pressOnset;
    EXPECT_NEAR(dose.press[0], double(7800_ns - onset), 1.0);
}

TEST(Platform, TrasIsEnforcedWhenWaitIsShort)
{
    TestPlatform platform(smallConfig());
    Program p;
    p.act(1, 100).wait(1_ns).pre(1); // PRE must slip to tRAS
    platform.run(p);
    const auto &dose = platform.chip().fault().dose(1, 101);
    const Time onset =
        platform.chip().fault().cells().params().pressOnset;
    EXPECT_NEAR(dose.press[0],
                double(platform.timing().tRAS - onset), 1.0);
}

TEST(Platform, ElapsedTimeMatchesPatternArithmetic)
{
    TestPlatform platform(smallConfig());
    auto layout = chr::makeLayout(chr::AccessKind::SingleSided, 1, 100);
    const std::uint64_t acts = 1000;
    auto program =
        chr::makePressProgram(layout, 7800_ns, acts, platform.timing());
    const Time elapsed = platform.run(program);
    const Time period = chr::pressActPeriod(7800_ns, platform.timing(),
                                            platform.cmdGap());
    EXPECT_NEAR(double(elapsed), double(Time(acts) * period),
                double(2 * period));
}

TEST(Platform, BudgetArithmeticMatchesPaperScale)
{
    auto timing = dram::benderTiming();
    // At tAggON = tREFI the paper's 60 ms budget admits ~7.7K ACTs.
    const auto acts =
        chr::maxActsWithinBudget(7800_ns, timing, 1500, 60_ms);
    EXPECT_GT(acts, 7400u);
    EXPECT_LT(acts, 7800u);
    // At the 36 ns minimum it admits over a million.
    const auto rh_acts =
        chr::maxActsWithinBudget(36_ns, timing, 1500, 60_ms);
    EXPECT_GT(rh_acts, 1000000u);
}

/**
 * The central platform property: executing a loop with fast-forward
 * must produce the same dose state and flips as concrete execution.
 */
class FastForwardEquivalence
    : public ::testing::TestWithParam<std::tuple<Time, std::uint64_t>>
{
};

TEST_P(FastForwardEquivalence, DoseMatchesConcreteExecution)
{
    const auto [t_agg_on, acts] = GetParam();

    auto run = [&](std::uint64_t ff_threshold) {
        TestPlatform platform(smallConfig(ff_threshold));
        platform.chip().fault().setEvalNoiseSigma(0.0);
        auto layout =
            chr::makeLayout(chr::AccessKind::DoubleSided, 1, 100);
        chr::initLayout(platform, layout,
                        chr::DataPattern::CheckerBoard);
        auto program = chr::makePressProgram(layout, t_agg_on, acts,
                                             platform.timing());
        platform.run(program);
        return platform.chip().fault().dose(1, 101); // sandwiched row
    };

    const auto fast = run(8);
    const auto slow = run(std::uint64_t(1) << 62); // never fast-forward
    for (int s = 0; s < 2; ++s) {
        EXPECT_NEAR(fast.hammer[s], slow.hammer[s],
                    0.002 * slow.hammer[s] + 1e-9)
            << "side " << s;
        EXPECT_NEAR(fast.press[s], slow.press[s],
                    0.002 * slow.press[s] + 1e-3)
            << "side " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, FastForwardEquivalence,
    ::testing::Values(std::make_tuple(36_ns, std::uint64_t(100)),
                      std::make_tuple(36_ns, std::uint64_t(2001)),
                      std::make_tuple(336_ns, std::uint64_t(500)),
                      std::make_tuple(7800_ns, std::uint64_t(64)),
                      std::make_tuple(70200_ns, std::uint64_t(33))));

TEST(Platform, FastForwardPreservesSearchResults)
{
    auto search = [&](std::uint64_t ff_threshold) {
        TestPlatform platform(smallConfig(ff_threshold));
        platform.chip().fault().setEvalNoiseSigma(0.0);
        auto layout =
            chr::makeLayout(chr::AccessKind::SingleSided, 1, 200);
        chr::SearchConfig cfg;
        cfg.repeats = 1;
        return chr::findAcmin(platform, layout,
                              chr::DataPattern::CheckerBoard, 7800_ns,
                              cfg);
    };
    const auto fast = search(8);
    const auto slow = search(std::uint64_t(1) << 62);
    ASSERT_EQ(fast.flipped, slow.flipped);
    if (fast.flipped) {
        EXPECT_NEAR(double(fast.acmin), double(slow.acmin),
                    0.03 * double(slow.acmin) + 2.0);
    }
}

TEST(Platform, TemperatureControllerSetsChip)
{
    TestPlatform platform(smallConfig());
    platform.setTemperature(80.0);
    EXPECT_DOUBLE_EQ(platform.temperature(), 80.0);
    EXPECT_DOUBLE_EQ(platform.chip().temperature(), 80.0);
}

TEST(Platform, FillAndCheckRowRoundTrip)
{
    TestPlatform platform(smallConfig());
    platform.fillRow(1, 300, 0x55);
    EXPECT_EQ(platform.chip().rowFill(1, 300), 0x55);
    EXPECT_TRUE(platform.checkRow(1, 300).empty());
}

TEST(Platform, RefreshCommandAdvancesStripe)
{
    TestPlatform platform(smallConfig());
    Program p;
    p.ref();
    p.ref();
    platform.run(p);
    // Two REFs must be spaced by at least tRFC.
    EXPECT_GE(platform.now(), platform.timing().tRFC);
}

} // namespace
} // namespace rp::bender
