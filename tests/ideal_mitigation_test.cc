/**
 * @file
 * Ideal-tracker tests and the Graphene-vs-ideal security comparison:
 * Graphene's approximate counting must never refresh *later* than the
 * exact tracker at the same threshold, on adversarial interleavings.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mitigation/graphene.h"
#include "mitigation/ideal.h"

namespace rp::mitigation {
namespace {

TEST(IdealCounter, RefreshesExactlyAtThresholdMultiples)
{
    IdealCounter ideal({/*threshold=*/10, /*blastRadius=*/1});
    std::vector<int> victims;
    for (int i = 1; i <= 35; ++i)
        ideal.onActivate(0, 7, victims);
    // Crossings at 10, 20, 30 -> 3 x 2 victims.
    EXPECT_EQ(victims.size(), 6u);
    EXPECT_EQ(ideal.preventiveRefreshes(), 6u);
    EXPECT_EQ(ideal.count(0, 7), 35u);
}

TEST(IdealCounter, WindowResetClearsCounts)
{
    IdealCounter ideal({10, 1});
    std::vector<int> victims;
    for (int i = 0; i < 9; ++i)
        ideal.onActivate(0, 7, victims);
    ideal.onRefreshWindow();
    EXPECT_EQ(ideal.count(0, 7), 0u);
    for (int i = 0; i < 9; ++i)
        ideal.onActivate(0, 7, victims);
    EXPECT_TRUE(victims.empty());
}

TEST(IdealCounter, BanksAreIndependent)
{
    IdealCounter ideal({5, 1});
    std::vector<int> victims;
    for (int i = 0; i < 4; ++i) {
        ideal.onActivate(0, 9, victims);
        ideal.onActivate(1, 9, victims);
    }
    EXPECT_TRUE(victims.empty());
    ideal.onActivate(0, 9, victims);
    EXPECT_EQ(victims.size(), 2u);
}

/**
 * Adversarial-interleaving property: for random access streams, the
 * first Graphene-triggered refresh of a hammered row happens at an
 * activation count no later than the ideal tracker's threshold.
 */
class GrapheneVsIdeal : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GrapheneVsIdeal, GrapheneNeverLagsTheIdealTracker)
{
    constexpr std::uint32_t threshold = 64;
    GrapheneConfig gcfg;
    gcfg.threshold = threshold;
    gcfg.tableEntries = 64;
    gcfg.banks = 1;
    Graphene graphene(gcfg);
    IdealCounter ideal({threshold, 2});

    Rng rng(GetParam());
    const int aggressor = 5000;
    std::uint64_t aggressor_acts = 0;
    bool graphene_fired = false;

    for (int step = 0; step < 200000 && !graphene_fired; ++step) {
        std::vector<int> gv, iv;
        if (rng.below(4) == 0) {
            ++aggressor_acts;
            graphene.onActivate(0, aggressor, gv);
            ideal.onActivate(0, aggressor, iv);
            graphene_fired = !gv.empty();
        } else {
            const int noise = int(rng.below(3000));
            graphene.onActivate(0, noise, gv);
            ideal.onActivate(0, noise, iv);
        }
    }
    ASSERT_TRUE(graphene_fired);
    // The space-saving estimate only overestimates: Graphene fires at
    // or before the exact threshold crossing.
    EXPECT_LE(aggressor_acts, std::uint64_t(threshold));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrapheneVsIdeal,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GrapheneVsIdeal, IdealIssuesNoMoreRefreshesOnUniformTraffic)
{
    // On spread-out traffic the exact tracker is the overhead floor -
    // provided Graphene is sized per its guarantee (entries >= W/T).
    constexpr std::uint32_t threshold = 32;
    GrapheneConfig gcfg;
    gcfg.threshold = threshold;
    gcfg.tableEntries = 4096;
    gcfg.banks = 1;
    Graphene graphene(gcfg);
    IdealCounter ideal({threshold, 2});

    Rng rng(42);
    std::vector<int> sink;
    for (int i = 0; i < 100000; ++i) {
        const int row = int(rng.below(500));
        graphene.onActivate(0, row, sink);
        ideal.onActivate(0, row, sink);
    }
    EXPECT_GE(graphene.preventiveRefreshes(),
              ideal.preventiveRefreshes());
}

} // namespace
} // namespace rp::mitigation
