/**
 * @file
 * Mitigation tests: the section 7.4 adaptation methodology (threshold
 * derivation, security monotonicity), Graphene tracking guarantees,
 * and PARA's probabilistic behaviour.
 */

#include <gtest/gtest.h>

#include "mitigation/adapter.h"
#include "mitigation/defaults.h"
#include "mitigation/graphene.h"
#include "mitigation/para.h"

namespace rp::mitigation {
namespace {

using namespace rp::literals;

TEST(Adapter, PaperTable3Reproduction)
{
    const auto profile = paperTable3Profile();
    const std::uint32_t trh = 1000;
    // The exact T'_RH row of Table 3.
    EXPECT_EQ(adaptThreshold(profile, trh, 36_ns).adaptedTrh, 1000u);
    EXPECT_EQ(adaptThreshold(profile, trh, 66_ns).adaptedTrh, 809u);
    EXPECT_EQ(adaptThreshold(profile, trh, 96_ns).adaptedTrh, 724u);
    EXPECT_EQ(adaptThreshold(profile, trh, 186_ns).adaptedTrh, 619u);
    EXPECT_EQ(adaptThreshold(profile, trh, 336_ns).adaptedTrh, 555u);
    EXPECT_EQ(adaptThreshold(profile, trh, 636_ns).adaptedTrh, 419u);
}

TEST(Adapter, GrapheneAndParaConfigsMatchTable3)
{
    // Graphene threshold = T'_RH / 3; PARA p = 34 / T'_RH.
    EXPECT_EQ(grapheneFor(1000, 64_ms, 45_ns, 32).threshold, 333u);
    EXPECT_EQ(grapheneFor(809, 64_ms, 45_ns, 32).threshold, 269u);
    EXPECT_EQ(grapheneFor(419, 64_ms, 45_ns, 32).threshold, 139u);
    EXPECT_NEAR(paraFor(1000).p, 0.034, 0.001);
    EXPECT_NEAR(paraFor(724).p, 0.047, 0.001);
    EXPECT_NEAR(paraFor(419).p, 0.081, 0.002);
}

TEST(Adapter, StandardDefaultsMatchPaperConstants)
{
    // The named defaults are the paper's Table 3 evaluation
    // constants; standardGrapheneFor must be exactly grapheneFor
    // under them.
    EXPECT_EQ(kGrapheneResetWindow, 64_ms);
    EXPECT_EQ(kGrapheneActivationInterval, 45_ns);
    EXPECT_EQ(kGrapheneBanks, 32);
    for (std::uint32_t trh : {1000u, 809u, 724u, 419u}) {
        const auto expected = grapheneFor(trh, 64_ms, 45_ns, 32);
        const auto got = standardGrapheneFor(trh);
        EXPECT_EQ(got.threshold, expected.threshold);
        EXPECT_EQ(got.tableEntries, expected.tableEntries);
        EXPECT_EQ(got.banks, expected.banks);
    }
    EXPECT_EQ(makeStandardMitigation(false, 1000)->name(), "Graphene");
    EXPECT_EQ(makeStandardMitigation(true, 1000)->name(), "PARA");
    auto factory = standardMitigationFactory(true, 1000);
    auto a = factory(), b = factory();
    EXPECT_NE(a.get(), b.get()); // fresh instance per invocation
}

TEST(Adapter, WorstRatioIsCumulativeMinimum)
{
    DisturbProfile p;
    p.points = {{36_ns, 1.0}, {96_ns, 0.7}, {66_ns, 0.8},
                {186_ns, 0.75}}; // non-monotonic sample point
    EXPECT_DOUBLE_EQ(p.worstRatioUpTo(36_ns), 1.0);
    EXPECT_DOUBLE_EQ(p.worstRatioUpTo(96_ns), 0.7);
    // A later, larger ratio must not loosen the bound.
    EXPECT_DOUBLE_EQ(p.worstRatioUpTo(186_ns), 0.7);
    EXPECT_DOUBLE_EQ(p.worstRatioUpTo(10_ns), 1.0);
}

TEST(Adapter, AdaptationIsSound)
{
    EXPECT_TRUE(adaptationIsSound(paperTable3Profile(), 1000,
                                  {36_ns, 66_ns, 96_ns, 186_ns, 336_ns,
                                   636_ns}));
    // A profile that would raise the threshold is rejected.
    DisturbProfile bad;
    bad.points = {{36_ns, 1.5}};
    EXPECT_FALSE(adaptationIsSound(bad, 1000, {36_ns}));
}

TEST(Adapter, ThresholdNeverBelowOne)
{
    DisturbProfile p;
    p.points = {{36_ns, 1e-9}};
    EXPECT_EQ(adaptThreshold(p, 1000, 36_ns).adaptedTrh, 1u);
}

TEST(Graphene, TriggersPreventiveRefreshAtThreshold)
{
    GrapheneConfig cfg;
    cfg.threshold = 100;
    cfg.tableEntries = 16;
    cfg.blastRadius = 2;
    cfg.banks = 1;
    Graphene g(cfg);

    std::vector<int> victims;
    for (int i = 0; i < 99; ++i) {
        g.onActivate(0, 500, victims);
        EXPECT_TRUE(victims.empty()) << "at activation " << i;
    }
    g.onActivate(0, 500, victims);
    // Blast radius 2: rows 498, 499, 501, 502.
    EXPECT_EQ(victims.size(), 4u);
    EXPECT_EQ(g.preventiveRefreshes(), 4u);

    // The next threshold-worth of activations triggers again.
    victims.clear();
    for (int i = 0; i < 100; ++i)
        g.onActivate(0, 500, victims);
    EXPECT_EQ(victims.size(), 4u);
}

TEST(Graphene, CountEstimateNeverUndercounts)
{
    // Space-saving guarantee: a row activated N times has estimated
    // count >= its true count, so the preventive refresh can never be
    // later than N = threshold (the security property Graphene needs).
    GrapheneConfig cfg;
    cfg.threshold = 50;
    cfg.tableEntries = 4;
    cfg.banks = 1;
    Graphene g(cfg);

    std::vector<int> victims;
    // Interleave the victim's aggressor with many other rows so the
    // table churns.
    int aggressor_acts = 0;
    bool refreshed = false;
    for (int i = 0; i < 5000 && !refreshed; ++i) {
        g.onActivate(0, i % 97 + 1000, victims); // noise rows
        victims.clear();
        g.onActivate(0, 7, victims); // the aggressor
        ++aggressor_acts;
        refreshed = !victims.empty();
        victims.clear();
    }
    EXPECT_TRUE(refreshed);
    EXPECT_LE(aggressor_acts, 50);
}

TEST(Graphene, RefreshWindowResetsCounters)
{
    GrapheneConfig cfg;
    cfg.threshold = 100;
    cfg.tableEntries = 8;
    cfg.banks = 1;
    Graphene g(cfg);
    std::vector<int> victims;
    for (int i = 0; i < 99; ++i)
        g.onActivate(0, 5, victims);
    g.onRefreshWindow();
    for (int i = 0; i < 99; ++i)
        g.onActivate(0, 5, victims);
    EXPECT_TRUE(victims.empty());
}

TEST(Graphene, BanksAreIndependent)
{
    GrapheneConfig cfg;
    cfg.threshold = 10;
    cfg.tableEntries = 4;
    cfg.banks = 2;
    Graphene g(cfg);
    std::vector<int> victims;
    for (int i = 0; i < 9; ++i) {
        g.onActivate(0, 5, victims);
        g.onActivate(1, 5, victims);
    }
    EXPECT_TRUE(victims.empty());
    g.onActivate(0, 5, victims);
    EXPECT_FALSE(victims.empty());
}

TEST(Graphene, SizingCoversWorstCaseActs)
{
    auto cfg = grapheneFor(1000, 64_ms, 45_ns, 32);
    const double max_acts = 64e9 / 45.0 * 1e-3;
    EXPECT_GE(double(cfg.tableEntries) * cfg.threshold, max_acts * 0.9);
}

TEST(Para, RefreshRateMatchesP)
{
    ParaConfig cfg;
    cfg.p = 0.05;
    cfg.seed = 3;
    Para para(cfg);
    std::vector<int> victims;
    const int acts = 200000;
    for (int i = 0; i < acts; ++i)
        para.onActivate(0, 1000, victims);
    const double rate = double(victims.size()) / double(acts);
    EXPECT_NEAR(rate, 0.05, 0.005);
    EXPECT_EQ(para.preventiveRefreshes(), victims.size());
}

TEST(Para, VictimsAreAdjacentRows)
{
    Para para(paraFor(419));
    std::vector<int> victims;
    for (int i = 0; i < 5000; ++i)
        para.onActivate(0, 1000, victims);
    ASSERT_FALSE(victims.empty());
    bool minus = false, plus = false;
    for (int v : victims) {
        EXPECT_TRUE(v == 999 || v == 1001);
        minus = minus || v == 999;
        plus = plus || v == 1001;
    }
    EXPECT_TRUE(minus);
    EXPECT_TRUE(plus);
}

/**
 * End-to-end security property of the adaptation (section 7.4): with
 * t_mro enforced and T'_RH configured, an aggressor row cannot
 * accumulate T'_RH activations within a window without its neighbors
 * being preventively refreshed.
 */
class AdaptedSecurity : public ::testing::TestWithParam<Time>
{
};

TEST_P(AdaptedSecurity, GrapheneRpRefreshesBeforeAdaptedThreshold)
{
    const Time t_mro = GetParam();
    const auto a =
        adaptThreshold(paperTable3Profile(), 1000, t_mro);
    Graphene g(grapheneFor(a.adaptedTrh, 64_ms, 45_ns, 32));

    std::vector<int> victims;
    std::uint32_t acts_until_refresh = 0;
    for (std::uint32_t i = 0; i < a.adaptedTrh + 1; ++i) {
        g.onActivate(3, 42, victims);
        ++acts_until_refresh;
        if (!victims.empty())
            break;
    }
    EXPECT_FALSE(victims.empty());
    EXPECT_LT(acts_until_refresh, a.adaptedTrh);
}

INSTANTIATE_TEST_SUITE_P(Tmros, AdaptedSecurity,
                         ::testing::Values(36_ns, 66_ns, 96_ns, 186_ns,
                                           336_ns, 636_ns));

} // namespace
} // namespace rp::mitigation
