/**
 * @file
 * rp::api::Service tests: submission/validation, the per-job event
 * stream, queued + running cancellation through the engine's
 * cancellation points, failure reporting, warm-cache stats, and the
 * concurrent-determinism contract — the same experiment submitted N
 * times with distinct seeds alongside unrelated jobs produces
 * artifacts byte-identical to serial `rowpress run` at --threads 1
 * and 4.
 */

#include <gtest/gtest.h>

#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "api/cli.h"
#include "api/context.h"
#include "api/service.h"
#include "device/die_config.h"

namespace rp::api {
namespace {

namespace fs = std::filesystem;
using namespace rp::literals;

/** Release-gated experiment used by the cancellation tests. */
struct Gate
{
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(m);
        entered = false;
        release = false;
    }

    void
    waitEntered()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [this] { return entered; });
    }

    void
    open()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            release = true;
        }
        cv.notify_all();
    }
};
Gate g_gate;

void
runSweep(ExperimentContext &ctx)
{
    // Real characterization work (a small ACmin sweep), so the
    // determinism test exercises engine parallelism and the shared
    // warm threshold stores, not just a stub.
    const auto die = device::dieS8GbB();
    const auto mc = ctx.moduleConfig(die, 50.0);
    const std::vector<Time> sweep = {36_ns, 7800_ns, 300_us};
    auto points = chr::acminSweep(mc, ctx.engine(), sweep,
                                  chr::AccessKind::SingleSided);
    Dataset d("svc sweep");
    d.header({"tAggOn_ns", "mean_acmin", "fraction_flipped"});
    for (const auto &p : points)
        d.rowf(double(p.tAggOn), p.meanAcmin(), p.fractionFlipped());
    ctx.emit(d);
    ctx.emitAcminSweepRaw("raw_sweep", die.id, 50.0,
                          chr::AccessKind::SingleSided,
                          chr::DataPattern::CheckerBoard, points);
    ctx.note("sweep note\n");
}

struct RegisterDummies
{
    RegisterDummies()
    {
        auto &registry = ExperimentRegistry::instance();
        registry.add({{"zzsvc_sweep", "Service sweep dummy", "none",
                       "test"},
                      nullptr, runSweep});
        registry.add({{"zzsvc_other", "Unrelated quick dummy", "none",
                       "test"},
                      nullptr, [](ExperimentContext &ctx) {
                          Dataset d("other");
                          d.header({"x"});
                          d.row({"1"});
                          ctx.emit(d);
                      }});
        registry.add({{"zzsvc_gate", "Blocks until released", "none",
                       "test"},
                      nullptr, [](ExperimentContext &ctx) {
                          ctx.engine().map<int>(
                              1, [](const core::TaskContext &) {
                                  std::unique_lock<std::mutex> lock(
                                      g_gate.m);
                                  g_gate.entered = true;
                                  g_gate.cv.notify_all();
                                  g_gate.cv.wait(lock, [] {
                                      return g_gate.release;
                                  });
                                  return 0;
                              });
                          // Second task set: the engine checks the
                          // job's cancel token at run() entry, so a
                          // cancel issued while the gate was closed
                          // lands here.
                          ctx.engine().map<int>(
                              1, [](const core::TaskContext &) {
                                  return 0;
                              });
                      }});
        registry.add({{"zzsvc_fail", "Always throws", "none", "test"},
                      nullptr, [](ExperimentContext &) {
                          throw std::runtime_error("deliberate");
                      }});
    }
};
const RegisterDummies register_dummies;

fs::path
tempDir(const std::string &leaf)
{
    const fs::path dir = fs::path(::testing::TempDir()) / leaf;
    fs::remove_all(dir);
    return dir;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ApiService, SubmitRunsAndStreamsOrderedEvents)
{
    const fs::path out = tempDir("rp_svc_events");
    Service service;

    std::mutex m;
    std::vector<JobEvent> events;
    service.addObserver([&](const JobEvent &event) {
        std::lock_guard<std::mutex> lock(m);
        events.push_back(event);
    });

    JobRequest req;
    req.experiment = "zzsvc_sweep";
    req.overlay = {{"locations", "1"}, {"threads", "1"}};
    req.outDir = out;
    const auto id = service.submit(req);
    const JobStatus st = service.wait(id);

    EXPECT_EQ(st.state, JobState::Finished);
    EXPECT_EQ(st.experiment, "zzsvc_sweep");
    EXPECT_EQ(st.engineThreads, 1);
    EXPECT_TRUE(fs::exists(out / "zzsvc_sweep" / "svc_sweep.csv"));
    EXPECT_TRUE(fs::exists(out / "zzsvc_sweep" / "raw_sweep.csv"));
    EXPECT_TRUE(fs::exists(out / "zzsvc_sweep" / "result.json"));

    std::lock_guard<std::mutex> lock(m);
    ASSERT_GE(events.size(), 5u);
    EXPECT_EQ(events.front().type, JobEventType::Queued);
    EXPECT_EQ(events[1].type, JobEventType::Started);
    EXPECT_EQ(events.back().type, JobEventType::Finished);
    EXPECT_EQ(events.back().state, JobState::Finished);
    for (const JobEvent &event : events) {
        EXPECT_EQ(event.job, id);
        EXPECT_EQ(event.experiment, "zzsvc_sweep");
    }
    // The Started event carries the fully resolved config.
    bool saw_locations = false;
    for (const ConfigValue &kv : events[1].config) {
        if (kv.key == "locations") {
            saw_locations = true;
            EXPECT_EQ(kv.value, "1");
            EXPECT_EQ(kv.origin, "cli");
        }
    }
    EXPECT_TRUE(saw_locations);
    // result.json embeds the same resolved config.
    const std::string json = slurp(out / "zzsvc_sweep" / "result.json");
    EXPECT_NE(json.find("\"config\""), std::string::npos);
    EXPECT_NE(json.find("\"origin\": \"cli\""), std::string::npos);
}

TEST(ApiService, SubmitValidatesBeforeRunning)
{
    Service service;
    JobRequest req;
    req.experiment = "zz_no_such_experiment";
    EXPECT_THROW(service.submit(req), ConfigError);

    req.experiment = "zzsvc_sweep";
    req.overlay = {{"bogus", "1"}};
    EXPECT_THROW(service.submit(req), ConfigError);

    req.overlay = {{"locations", "garbage"}};
    EXPECT_THROW(service.submit(req), ConfigError);

    req.overlay.clear();
    req.formats = {"xml"};
    EXPECT_THROW(service.submit(req), ConfigError);

    req.formats = {};
    EXPECT_THROW(service.submit(req), ConfigError);

    // "table" needs a stream; serve-style submissions have none.
    req.formats = {"table"};
    req.tableStream = nullptr;
    EXPECT_THROW(service.submit(req), ConfigError);

    EXPECT_THROW(service.status(999), ConfigError);
    EXPECT_FALSE(service.cancel(999));
}

TEST(ApiService, FailedJobReportsErrorAndWritesNoResult)
{
    const fs::path out = tempDir("rp_svc_fail");
    Service service;
    JobRequest req;
    req.experiment = "zzsvc_fail";
    req.outDir = out;
    const JobStatus st = service.wait(service.submit(req));
    EXPECT_EQ(st.state, JobState::Failed);
    EXPECT_NE(st.error.find("deliberate"), std::string::npos);
    EXPECT_FALSE(st.configError);
    // A failed job never finalizes its sinks.
    EXPECT_FALSE(fs::exists(out / "zzsvc_fail" / "result.json"));
}

TEST(ApiService, SinkFailureAtFinalizeFailsJobNotProcess)
{
    // An unwritable out dir is only hit by JsonSink at endExperiment,
    // i.e. while the Finished event dispatches on a scheduler worker
    // — it must become the job's outcome, not std::terminate.
    const fs::path blocker =
        fs::path(::testing::TempDir()) / "rp_svc_blocker";
    fs::remove_all(blocker);
    { std::ofstream touch(blocker); }
    ASSERT_TRUE(fs::is_regular_file(blocker));

    Service service;
    JobRequest req;
    req.experiment = "zzsvc_other";
    req.formats = {"json"};
    req.outDir = blocker / "sub"; // path under a regular file
    const JobStatus st = service.wait(service.submit(req));
    EXPECT_EQ(st.state, JobState::Failed);
    EXPECT_NE(st.error.find("finalizing outputs failed"),
              std::string::npos);

    // The service survives: the next job runs normally.
    JobRequest ok;
    ok.experiment = "zzsvc_other";
    ok.outDir = tempDir("rp_svc_after_blocker");
    EXPECT_EQ(service.wait(service.submit(ok)).state,
              JobState::Finished);
}

TEST(ApiService, CancelQueuedJob)
{
    const fs::path out = tempDir("rp_svc_cancel_queued");
    g_gate.reset();
    Service service(Service::Options(1));

    JobRequest gate;
    gate.experiment = "zzsvc_gate";
    gate.overlay = {{"threads", "1"}};
    gate.outDir = out;
    const auto gate_id = service.submit(gate);
    g_gate.waitEntered();
    EXPECT_EQ(service.status(gate_id).state, JobState::Running);

    JobRequest queued;
    queued.experiment = "zzsvc_other";
    queued.outDir = out;
    const auto queued_id = service.submit(queued);
    EXPECT_EQ(service.status(queued_id).state, JobState::Queued);

    EXPECT_TRUE(service.cancel(queued_id));
    EXPECT_EQ(service.wait(queued_id).state, JobState::Cancelled);
    // Never started: its sinks never opened an experiment directory.
    EXPECT_FALSE(fs::exists(out / "zzsvc_other"));

    g_gate.open();
    EXPECT_EQ(service.wait(gate_id).state, JobState::Finished);
}

TEST(ApiService, CancelRunningJobAtTaskBoundary)
{
    const fs::path out = tempDir("rp_svc_cancel_running");
    g_gate.reset();
    Service service;

    JobRequest gate;
    gate.experiment = "zzsvc_gate";
    gate.overlay = {{"threads", "1"}};
    gate.outDir = out;
    const auto id = service.submit(gate);
    g_gate.waitEntered();

    EXPECT_TRUE(service.cancel(id));
    g_gate.open();
    const JobStatus st = service.wait(id);
    EXPECT_EQ(st.state, JobState::Cancelled);
    EXPECT_FALSE(fs::exists(out / "zzsvc_gate" / "result.json"));
}

TEST(ApiService, WarmCacheStatsAndEviction)
{
    const fs::path out = tempDir("rp_svc_cache");
    Service service;
    JobRequest req;
    req.experiment = "zzsvc_sweep";
    req.overlay = {{"locations", "1"}, {"threads", "1"}};
    req.outDir = out;
    ASSERT_EQ(service.wait(service.submit(req)).state,
              JobState::Finished);

    const auto stats = Service::warmCacheStats();
    EXPECT_GE(stats.stores, 1u);
    EXPECT_GE(stats.misses, 1u);
    EXPECT_GE(stats.totals.candidateRows, 1u);
    EXPECT_GT(stats.totals.approxBytes, 0u);

    EXPECT_GE(Service::evictWarmCache(), 1u);
    const auto after = Service::warmCacheStats();
    EXPECT_EQ(after.stores, 0u);
    EXPECT_GE(after.evictions, 1u);

    // Eviction only trades warmth for memory: a rerun repopulates and
    // (by determinism) rewrites identical artifacts.
    const std::string before_json =
        slurp(out / "zzsvc_sweep" / "result.json");
    ASSERT_EQ(service.wait(service.submit(req)).state,
              JobState::Finished);
    EXPECT_EQ(slurp(out / "zzsvc_sweep" / "result.json"), before_json);
    EXPECT_GE(Service::warmCacheStats().stores, 1u);
}

/**
 * The concurrent-determinism satellite: the same experiment submitted
 * N times with distinct seeds, alongside an unrelated job, on a
 * multi-worker service — every artifact byte-identical to a serial
 * `rowpress run` of the same (seed, threads).
 */
TEST(ApiService, ConcurrentJobsMatchSerialRunByteForByte)
{
    const std::vector<std::string> seeds = {"11", "12", "13"};
    const std::vector<std::string> files = {"svc_sweep.csv",
                                            "raw_sweep.csv",
                                            "result.json"};

    for (const std::string &threads : {std::string("1"),
                                       std::string("4")}) {
        // Serial references via the `run` front-end (one process-wide
        // execution path: this is the same Service machinery).
        std::map<std::string, std::map<std::string, std::string>> ref;
        for (const std::string &seed : seeds) {
            const fs::path dir =
                tempDir("rp_svc_ref_t" + threads + "_s" + seed);
            std::ostringstream out, err;
            ASSERT_EQ(runCli({"run", "zzsvc_sweep", "--seed", seed,
                              "--locations", "2", "--threads", threads,
                              "--format", "csv,json", "--out",
                              dir.string()},
                             out, err),
                      0)
                << err.str();
            for (const std::string &file : files)
                ref[seed][file] = slurp(dir / "zzsvc_sweep" / file);
        }

        // Same jobs, submitted together on a 3-worker service with an
        // unrelated job racing them.
        Service service(Service::Options(3));
        std::vector<std::uint64_t> ids;
        std::vector<fs::path> dirs;
        for (const std::string &seed : seeds) {
            const fs::path dir =
                tempDir("rp_svc_conc_t" + threads + "_s" + seed);
            JobRequest req;
            req.experiment = "zzsvc_sweep";
            req.overlay = {{"seed", seed},
                           {"locations", "2"},
                           {"threads", threads}};
            req.outDir = dir;
            ids.push_back(service.submit(req));
            dirs.push_back(dir);
        }
        JobRequest other;
        other.experiment = "zzsvc_other";
        other.outDir = tempDir("rp_svc_conc_other_t" + threads);
        const auto other_id = service.submit(other);
        service.drain();

        EXPECT_EQ(service.status(other_id).state, JobState::Finished);
        for (std::size_t i = 0; i < seeds.size(); ++i) {
            ASSERT_EQ(service.status(ids[i]).state, JobState::Finished);
            for (const std::string &file : files)
                EXPECT_EQ(slurp(dirs[i] / "zzsvc_sweep" / file),
                          ref[seeds[i]][file])
                    << "seed " << seeds[i] << " threads " << threads
                    << " file " << file;
        }
    }
}

} // namespace
} // namespace rp::api
